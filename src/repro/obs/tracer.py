"""Nestable wall-clock spans with a zero-overhead disabled mode.

A :class:`Tracer` records a tree of :class:`Span` objects::

    tracer = Tracer()
    with tracer.span("overapprox", suite="cvc4pred"):
        ...
        with tracer.span("smt.solve"):
            ...

Every span records its start/end times (``time.monotonic``), an outcome
status (``ok`` unless the body raised), free-form key-value attributes
(:meth:`Span.set`) and point-in-time events (:meth:`Tracer.event`).

The default tracer is the module singleton :data:`NULL_TRACER`, whose
``span()`` hands back one shared no-op context manager — entering a span
when tracing is off costs two attribute lookups and nothing else, so the
instrumentation can stay in the hot pipeline permanently.

The *current* tracer/metrics pair lives in thread-local storage
(:func:`current_tracer`, :func:`current_metrics`, :func:`scope`) so deep
modules (the SAT core, the simplex) report without any plumbing through
the call stack.
"""

import threading
import time

from repro.obs.metrics import Metrics, NULL_METRICS


class Span:
    """One timed region; also its own context manager."""

    __slots__ = ("name", "attrs", "events", "children", "status",
                 "start", "end", "_tracer")

    def __init__(self, name, tracer, attrs=None):
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.events = []            # [(name, attrs dict), ...]
        self.children = []
        self.status = None          # "ok" | "error" once closed
        self.start = None
        self.end = None
        self._tracer = tracer

    @property
    def duration(self):
        """Seconds spent inside the span (None while still open)."""
        if self.start is None or self.end is None:
            return None
        return self.end - self.start

    def set(self, **attrs):
        """Attach key-value attributes to the span."""
        self.attrs.update(attrs)
        return self

    def event(self, name, **attrs):
        """Record a point-in-time event inside the span."""
        self.events.append((name, attrs))
        return self

    def __enter__(self):
        self._tracer._push(self)
        self.start = self._tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.end = self._tracer._clock()
        if self.status is None:
            self.status = "ok" if exc_type is None else "error"
        self._tracer._pop(self)
        return False

    def __repr__(self):
        took = "open" if self.duration is None else "%.4fs" % self.duration
        return "Span(%s, %s)" % (self.name, took)


class Tracer:
    """Collects a forest of spans (usually a single ``solve`` root)."""

    enabled = True

    def __init__(self, clock=time.monotonic):
        self._clock = clock
        self.roots = []
        self._stack = []

    def span(self, name, **attrs):
        """A new child span of the active span (context manager)."""
        return Span(name, self, attrs)

    def event(self, name, **attrs):
        """Record an event on the active span (or as a detached root)."""
        if self._stack:
            self._stack[-1].event(name, **attrs)
        else:
            orphan = Span(name, self, attrs)
            orphan.start = orphan.end = self._clock()
            orphan.status = "event"
            self.roots.append(orphan)

    def current(self):
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    def stack_names(self):
        """Names of the open spans, outermost first — the phase stack the
        sampling profiler attributes its samples to."""
        return tuple(span.name for span in self._stack)

    def annotate(self, **attrs):
        """Attach attributes to the active span, if any."""
        if self._stack:
            self._stack[-1].set(**attrs)

    def record_span(self, name, start, end, status="ok", **attrs):
        """Attach an already-closed span retroactively.

        For regions that cannot use the ``with`` protocol because they
        overlap other work on the same thread — e.g. the per-request
        spans of :mod:`repro.serve.service`, where many requests are
        open at once inside one event loop.  The span is parented under
        the currently-active span (or becomes a root) without ever
        touching the stack.
        """
        span = Span(name, self, attrs)
        span.start = start
        span.end = end
        span.status = status
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    # -- span lifecycle (driven by Span.__enter__/__exit__) -----------------

    def _push(self, span):
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span):
        # Tolerate exits out of order (a span leaked across a generator):
        # unwind down to and including the span being closed.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break

    def walk(self):
        """Yield ``(depth, span)`` over the whole forest, pre-order."""
        stack = [(0, root) for root in reversed(self.roots)]
        while stack:
            depth, span = stack.pop()
            yield depth, span
            for child in reversed(span.children):
                stack.append((depth + 1, child))


class _NullSpan:
    """Shared do-nothing span; every call returns immediately."""

    __slots__ = ()

    name = None
    attrs = {}
    events = ()
    children = ()
    status = None
    start = None
    end = None
    duration = None

    def set(self, **attrs):
        return self

    def event(self, name, **attrs):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: all operations are no-ops on shared singletons."""

    enabled = False
    roots = ()

    def span(self, name, **attrs):
        return _NULL_SPAN

    def event(self, name, **attrs):
        pass

    def current(self):
        return None

    def stack_names(self):
        return ()

    def annotate(self, **attrs):
        pass

    def record_span(self, name, start, end, status="ok", **attrs):
        return _NULL_SPAN

    def walk(self):
        return iter(())


NULL_TRACER = NullTracer()

_state = threading.local()


def current_tracer():
    """The thread's active tracer (:data:`NULL_TRACER` by default)."""
    return getattr(_state, "tracer", NULL_TRACER)


def current_metrics():
    """The thread's active metrics registry (no-op by default)."""
    return getattr(_state, "metrics", NULL_METRICS)


class scope:
    """Install a (tracer, metrics) pair as the thread's current context.

    ``None`` arguments keep the ambient value, so nested scopes compose::

        with scope(Tracer(), Metrics()) as (tracer, metrics):
            solver.solve(problem)      # deep modules see this pair

    Entering yields the resolved pair; exiting restores the previous one.
    """

    def __init__(self, tracer=None, metrics=None):
        self._tracer = tracer
        self._metrics = metrics
        self._saved = None

    def __enter__(self):
        self._saved = (getattr(_state, "tracer", None),
                       getattr(_state, "metrics", None))
        tracer = self._tracer if self._tracer is not None \
            else current_tracer()
        metrics = self._metrics
        if metrics is None:
            # An enabled tracer wants numbers to go with its spans even if
            # the caller did not supply a registry explicitly.
            ambient = current_metrics()
            metrics = Metrics() if tracer.enabled and not ambient.enabled \
                else ambient
        _state.tracer = tracer
        _state.metrics = metrics
        return tracer, metrics

    def __exit__(self, exc_type, exc, tb):
        saved_tracer, saved_metrics = self._saved
        if saved_tracer is None:
            try:
                del _state.tracer
            except AttributeError:
                pass
        else:
            _state.tracer = saved_tracer
        if saved_metrics is None:
            try:
                del _state.metrics
            except AttributeError:
                pass
        else:
            _state.metrics = saved_metrics
        return False
