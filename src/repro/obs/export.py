"""Exporters for the tracing/metrics subsystem.

Three output shapes, matching three consumers:

* :func:`render_report` — a human-readable span tree plus a metrics table,
  for ``repro --trace`` and ``repro selfcheck --trace``;
* :func:`iter_records` / :func:`dump_jsonl` / :func:`load_jsonl` — a flat
  JSON-lines event log (one ``span``/``event``/``metric`` object per
  line), for ``repro --trace-json FILE`` and offline tooling; the
  :func:`tracer_from_records`/:func:`metrics_from_records` pair rebuilds
  a walkable forest and a registry from the log, making the round trip
  lossless (histogram records carry their full bucket form);
* :func:`phase_seconds` — the per-phase duration breakdown the benchmark
  runner attaches to its rows (summing direct children of the ``solve``
  root, which is why those children must tile the solve wall time).
"""

import json


def _fmt_value(value):
    if isinstance(value, float):
        return "%.4g" % value
    return str(value)


def _fmt_attrs(attrs):
    return " ".join("%s=%s" % (k, _fmt_value(v))
                    for k, v in sorted(attrs.items()))


def render_tree(tracer):
    """Human-readable span tree with durations and attributes."""
    entries = list(tracer.walk())
    open_below = []        # open_below[d]: more siblings coming at depth d
    rendered = []
    for i, (depth, span) in enumerate(entries):
        next_at_depth = False
        for d, _ in entries[i + 1:]:
            if d < depth:
                break
            if d == depth:
                next_at_depth = True
                break
        while len(open_below) <= depth:
            open_below.append(False)
        open_below[depth] = next_at_depth

        if depth == 0:
            prefix = ""
        else:
            prefix = "".join("|  " if open_below[d] else "   "
                             for d in range(1, depth))
            prefix += "+- "
        took = "     ?  " if span.duration is None \
            else "%7.3fs" % span.duration
        text = "%s%-*s %s" % (prefix, max(1, 36 - len(prefix)),
                              span.name, took)
        extras = dict(span.attrs)
        if span.status not in (None, "ok"):
            extras["status"] = span.status
        if extras:
            text += "  " + _fmt_attrs(extras)
        rendered.append(text)
        for name, attrs in span.events:
            marker = prefix.replace("+- ", "|  ") if depth else ""
            line = "%s   * %s" % (marker, name)
            if attrs:
                line += "  " + _fmt_attrs(attrs)
            rendered.append(line)
    return "\n".join(rendered)


def render_metrics(metrics):
    """Aligned ``name value`` table of the flat metrics view."""
    flat = metrics.flat()
    if not flat:
        return ""
    width = max(len(name) for name in flat)
    lines = []
    for name in sorted(flat):
        lines.append("%-*s  %s" % (width, name, _fmt_value(flat[name])))
    return "\n".join(lines)


def render_report(tracer, metrics=None):
    """Span tree followed by the metrics table."""
    parts = []
    tree = render_tree(tracer)
    if tree:
        parts.append(tree)
    if metrics is not None and metrics.enabled:
        table = render_metrics(metrics)
        if table:
            parts.append("metrics:")
            parts.append(table)
    return "\n".join(parts)


# -- JSON-lines event log -----------------------------------------------------


def iter_records(tracer, metrics=None):
    """Flat JSON-able records: spans (pre-order), events, then metrics."""
    records = []
    for depth, span in tracer.walk():
        record = {
            "type": "span",
            "name": span.name,
            "depth": depth,
            "start_s": span.start,
            "duration_s": span.duration,
            "status": span.status,
        }
        if span.attrs:
            record["attrs"] = dict(span.attrs)
        records.append(record)
        for name, attrs in span.events:
            event = {"type": "event", "name": name, "span": span.name,
                     "depth": depth + 1}
            if attrs:
                event["attrs"] = dict(attrs)
            records.append(event)
    if metrics is not None:
        for name in sorted(metrics.counters):
            records.append({"type": "metric", "kind": "counter",
                            "name": name, "value": metrics.counters[name]})
        for name in sorted(metrics.gauges):
            records.append({"type": "metric", "kind": "gauge",
                            "name": name, "value": metrics.gauges[name]})
        for name in sorted(metrics.histograms):
            records.append({"type": "metric", "kind": "histogram",
                            "name": name,
                            "value": metrics.histograms[name].to_dict()})
    return records


def dump_jsonl(tracer, metrics=None, fh=None):
    """Serialize records as JSON-lines; returns the text when *fh* is None."""
    lines = [json.dumps(record, sort_keys=True)
             for record in iter_records(tracer, metrics)]
    text = "\n".join(lines) + ("\n" if lines else "")
    if fh is None:
        return text
    fh.write(text)
    return None


def load_jsonl(source):
    """Parse a JSON-lines export back into a list of record dicts."""
    if hasattr(source, "read"):
        source = source.read()
    records = []
    for line in source.splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


# -- replay (JSONL -> walkable forest + registry) ------------------------------


class ReplaySpan:
    """A span rebuilt from its exported record.

    Walk-compatible with :class:`~repro.obs.tracer.Span` (same attribute
    surface, stored rather than computed duration) so every renderer in
    this module accepts a replayed forest unchanged.
    """

    __slots__ = ("name", "attrs", "events", "children", "status",
                 "start", "duration")

    def __init__(self, record):
        self.name = record.get("name")
        self.attrs = dict(record.get("attrs", {}))
        self.events = []
        self.children = []
        self.status = record.get("status")
        self.start = record.get("start_s")
        self.duration = record.get("duration_s")

    def __repr__(self):
        took = "open" if self.duration is None else "%.4fs" % self.duration
        return "ReplaySpan(%s, %s)" % (self.name, took)


class ReplayTracer:
    """A read-only span forest rebuilt by :func:`tracer_from_records`."""

    enabled = True

    def __init__(self):
        self.roots = []

    def walk(self):
        stack = [(0, root) for root in reversed(self.roots)]
        while stack:
            depth, span = stack.pop()
            yield depth, span
            for child in reversed(span.children):
                stack.append((depth + 1, child))


def tracer_from_records(records):
    """Rebuild the span forest from exported records (the inverse of the
    span/event part of :func:`iter_records`): nesting is recovered from
    the pre-order ``depth`` fields, events re-attach to their span."""
    tracer = ReplayTracer()
    stack = []                  # [(depth, ReplaySpan)]
    for record in records:
        kind = record.get("type")
        if kind == "span":
            span = ReplaySpan(record)
            depth = record.get("depth", 0)
            while stack and stack[-1][0] >= depth:
                stack.pop()
            if stack:
                stack[-1][1].children.append(span)
            else:
                tracer.roots.append(span)
            stack.append((depth, span))
        elif kind == "event" and stack:
            stack[-1][1].events.append((record.get("name"),
                                        dict(record.get("attrs", {}))))
    return tracer


def metrics_from_records(records):
    """Rebuild a :class:`~repro.obs.metrics.Metrics` registry from
    exported ``metric`` records (the inverse of the metric part of
    :func:`iter_records` — histogram records carry their full mergeable
    bucket form, so nothing is lost)."""
    from repro.obs.metrics import Histogram, Metrics
    metrics = Metrics()
    for record in records:
        if record.get("type") != "metric":
            continue
        kind = record.get("kind", "counter")
        name, value = record["name"], record["value"]
        if kind == "counter":
            metrics.add(name, value)
        elif kind == "gauge":
            metrics.gauge(name, value)
        elif kind == "histogram":
            hist = metrics.histograms.get(name)
            if hist is None:
                hist = metrics.histograms[name] = Histogram()
            hist.merge(Histogram.from_dict(value))
    return metrics


# -- benchmark integration -----------------------------------------------------


def phase_seconds(tracer):
    """Seconds per top-level phase: ``{"phase.<name>_s": seconds}``.

    Sums the direct children of each root span (the per-phase spans of
    ``TrauSolver.solve``); repeated phases (refinement rounds) accumulate.
    """
    breakdown = {}
    for root in tracer.roots:
        for child in root.children:
            if child.duration is None:
                continue
            key = "phase.%s_s" % child.name
            breakdown[key] = breakdown.get(key, 0.0) + child.duration
    return breakdown
