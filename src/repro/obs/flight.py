"""Per-request flight recorder: a black box for requests that go wrong.

A :class:`FlightRecorder` keeps a bounded ring of the most recent
request records — span trees, config/fingerprint context, verdicts and
degradation stats — and writes a **dump artifact** when something bad
happens.  The triggers, and which side of the pool observes them:

========== =======================================================
trigger     observed by
========== =======================================================
degraded    the worker (the ladder recorded ``degraded_to``)
slo         the worker (request exceeded the latency SLO threshold)
hard-killed the parent (a hung worker cannot write its own black box)
quarantined the parent (verdict of the supervision policy)
========== =======================================================

Dumps are *commented JSON*: a few ``#`` header lines a human greps
first (trigger, source, detail) followed by a pretty-printed JSON body
holding the triggering record plus the recent-request ring — the same
shape :func:`read_flight` parses back for tools and tests.  File names
carry source, pid, a sequence number and the trigger, so concurrent
workers dumping into one ``--flight-dir`` never collide.
"""

import json
import os


class FlightRecorder:
    """Bounded ring of recent request records plus a dump-to-disk path.

    ``push`` is cheap (dict append, bounded); ``dump`` does I/O and is
    expected to be rare — it is the crash path, not the hot path.  With
    *directory* ``None`` the recorder still keeps its ring (useful for
    inspection in tests) but ``dump`` only returns the rendered text.
    """

    __slots__ = ("directory", "capacity", "source", "ring", "dumped",
                 "_sequence")

    def __init__(self, directory=None, capacity=8, source="worker"):
        self.directory = directory
        self.capacity = max(1, capacity)
        self.source = source
        self.ring = []              # oldest first, len <= capacity
        self.dumped = []            # paths written by this recorder
        self._sequence = 0

    def push(self, entry):
        """Remember one request record (a JSON-able dict)."""
        self.ring.append(entry)
        if len(self.ring) > self.capacity:
            del self.ring[0]
        return entry

    def render(self, trigger, detail=None, entry=None):
        """The commented-JSON artifact text for a *trigger* firing."""
        if entry is None and self.ring:
            entry = self.ring[-1]
        header = [
            "# repro flight recorder",
            "# trigger: %s" % trigger,
            "# source: %s (pid %d)" % (self.source, os.getpid()),
        ]
        if detail:
            header.append("# detail: %s" % detail)
        name = (entry or {}).get("name")
        if name:
            header.append("# request: %s" % name)
        body = {
            "trigger": trigger,
            "detail": detail,
            "source": self.source,
            "pid": os.getpid(),
            "request": entry,
            "recent": [r for r in self.ring if r is not entry],
        }
        return "\n".join(header) + "\n" + \
            json.dumps(body, indent=2, sort_keys=True, default=str) + "\n"

    def dump(self, trigger, detail=None, entry=None):
        """Write the artifact; returns its path (or the text when the
        recorder has no directory)."""
        text = self.render(trigger, detail, entry)
        if self.directory is None:
            return text
        os.makedirs(self.directory, exist_ok=True)
        self._sequence += 1
        path = os.path.join(
            self.directory,
            "flight-%s-pid%d-%03d-%s.json"
            % (self.source, os.getpid(), self._sequence,
               trigger.replace("/", "_")))
        with open(path, "w") as handle:
            handle.write(text)
        self.dumped.append(path)
        return path


def read_flight(source):
    """Parse a dump artifact (path, file object, or text) back into its
    JSON body, skipping the ``#`` header lines."""
    if hasattr(source, "read"):
        text = source.read()
    elif "\n" not in source and os.path.exists(source):
        with open(source) as handle:
            text = handle.read()
    else:
        text = source
    body = "\n".join(line for line in text.splitlines()
                     if not line.startswith("#"))
    return json.loads(body)


def request_entry(name, fingerprint=None, config=None, verdict=None,
                  elapsed=None, stats=None, spans=None):
    """Build the canonical request record the serving layer pushes.

    *stats* is filtered down to the failure-analysis keys (degradations,
    budget trips, retry counts) so the ring stays small; *spans* is the
    bounded record list from
    :func:`repro.obs.pipeline.span_records`.
    """
    entry = {"name": name}
    if fingerprint is not None:
        entry["fingerprint"] = fingerprint
    if config is not None:
        entry["config"] = config
    if verdict is not None:
        entry["verdict"] = verdict
    if elapsed is not None:
        entry["elapsed_s"] = elapsed
    if stats:
        keep = {}
        for key in ("degraded_to", "degradations", "stopped_by",
                    "budget_tripped", "retries", "reason", "engine"):
            if key in stats:
                keep[key] = stats[key]
        if keep:
            entry["stats"] = keep
    if spans is not None:
        entry["spans"] = spans
    return entry
