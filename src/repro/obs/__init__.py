"""repro.obs — solver-wide tracing and metrics.

The observability substrate for the whole pipeline:

* :class:`Tracer` / :class:`NullTracer` — nestable wall-clock spans with
  attributes and events; the null variant is a zero-overhead default.
* :class:`Metrics` — named counters, gauges and histograms with a flat
  ``{name: number}`` export merged into ``SolveResult.stats``.
* :func:`current_tracer` / :func:`current_metrics` / :func:`scope` —
  thread-local context so deep modules (SAT core, simplex, automata)
  report without parameter plumbing.
* :mod:`repro.obs.export` — tree report, JSON-lines log (with a lossless
  replay path), per-phase breakdown for the benchmark runner.
* :mod:`repro.obs.pipeline` — the cross-process delta protocol and the
  parent-side :class:`TelemetryAggregator`.
* :mod:`repro.obs.prometheus` — text exposition render/parse/lint for
  ``--metrics-out`` snapshots.
* :mod:`repro.obs.flight` — the per-request flight recorder dumped when
  a request degrades, blows its SLO, hangs or is quarantined.
* :mod:`repro.obs.profile` — the deterministic sampling profiler behind
  ``--profile-hot``.
* :mod:`repro.obs.top` — the ``repro top`` live view over a snapshot.

Typical use::

    from repro import TrauSolver
    from repro.obs import Tracer, render_report

    tracer = Tracer()
    result = TrauSolver(tracer=tracer).solve(problem, timeout=10)
    print(render_report(tracer))
    print(result.stats["elapsed_s"], result.stats.get("sat.conflicts"))
"""

from repro.obs.export import (
    dump_jsonl, iter_records, load_jsonl, metrics_from_records,
    phase_seconds, render_metrics, render_report, render_tree,
    tracer_from_records,
)
from repro.obs.flight import FlightRecorder, read_flight, request_entry
from repro.obs.metrics import Histogram, Metrics, NULL_METRICS, NullMetrics
from repro.obs.pipeline import (
    TelemetryAggregator, decode_metrics, encode_metrics, telemetry_delta,
)
from repro.obs.profile import SamplingProfiler
from repro.obs.prometheus import (
    lint_prometheus, metrics_from_prometheus, render_prometheus,
    write_snapshot,
)
from repro.obs.tracer import (
    NULL_TRACER, NullTracer, Span, Tracer, current_metrics, current_tracer,
    scope,
)

__all__ = [
    "Tracer", "NullTracer", "Span", "NULL_TRACER",
    "Metrics", "NullMetrics", "Histogram", "NULL_METRICS",
    "current_tracer", "current_metrics", "scope",
    "render_tree", "render_metrics", "render_report",
    "iter_records", "dump_jsonl", "load_jsonl", "phase_seconds",
    "tracer_from_records", "metrics_from_records",
    "TelemetryAggregator", "telemetry_delta", "encode_metrics",
    "decode_metrics",
    "render_prometheus", "metrics_from_prometheus", "lint_prometheus",
    "write_snapshot",
    "FlightRecorder", "read_flight", "request_entry",
    "SamplingProfiler",
]
