"""``repro top`` — a live terminal view over a telemetry snapshot file.

The serving layer periodically rewrites its ``--metrics-out`` snapshot
(atomically, via :func:`repro.obs.prometheus.write_snapshot`); ``repro
top`` scrapes that file exactly the way a Prometheus server would scrape
``/metrics``, so the view works on any live run, needs no socket, and
exercises the same exposition text the CI linter validates.  Rates
(RPS) come from differencing consecutive scrapes, falling back to
``serve.answers / telemetry.uptime_s`` on the first frame.

:func:`render_top` is a pure snapshot-to-text function (what the tests
pin down); :func:`run_top` adds the clear-screen redraw loop.
"""

import os
import time

from repro.obs.prometheus import metrics_from_prometheus

_CLEAR = "\x1b[2J\x1b[H"


def _fmt_seconds(value):
    if value is None:
        return "      -"
    if value >= 100:
        return "%7.1f" % value
    return "%7.3f" % value


def phase_rows(metrics):
    """``[(phase name, Histogram)]`` from ``phase.<name>_s`` histograms,
    ordered by total time descending."""
    rows = [(name[len("phase."):-len("_s")], hist)
            for name, hist in metrics.histograms.items()
            if name.startswith("phase.") and name.endswith("_s")]
    rows.sort(key=lambda row: (-row[1].total, row[0]))
    return rows


def render_top(metrics, source="", rps=None, max_phases=15):
    """One frame of the top view for a scraped registry."""
    counters, gauges = metrics.counters, metrics.gauges

    def c(name):
        return counters.get(name, 0)

    def g(name, default=0):
        return gauges.get(name, default)

    uptime = g("telemetry.uptime_s", 0.0)
    answers = c("serve.answers")
    if rps is None and uptime > 0:
        rps = answers / uptime
    # First scrape with no uptime yet: there is nothing to diff against
    # and nothing to divide by, so show "--" rather than a made-up 0.00.
    rps_text = "--" if rps is None else "%.2f" % rps
    lines = []
    title = "repro top"
    if source:
        title += " -- %s" % source
    lines.append("%s    uptime %6.1fs    workers %d    deltas %d"
                 % (title, uptime, g("telemetry.workers"),
                    g("telemetry.deltas")))
    lines.append(
        "answers %d (sat=%d unsat=%d unknown=%d)    rps %s    "
        "requests %d"
        % (answers, c("serve.answers.sat"), c("serve.answers.unsat"),
           c("serve.answers.unknown"), rps_text, c("serve.requests")))
    lines.append(
        "queue %d  inflight %d  open %d  retries %d  deaths %d  "
        "hard-kills %d"
        % (g("serve.queue_depth"), g("serve.inflight"),
           g("serve.open_requests"), c("serve.retries"),
           c("serve.worker_deaths"), c("serve.hard_kills")))
    lines.append(
        "quarantined %d  disagreements %d  rejected %d  recycled %d  "
        "spawned %d"
        % (c("serve.quarantined"), c("serve.disagreements"),
           c("serve.rejected"), g("serve.pool.recycled"),
           g("serve.pool.spawned")))
    rows = phase_rows(metrics)
    if rows:
        lines.append("")
        lines.append("%-28s %7s %9s %7s %7s %7s"
                     % ("phase", "count", "total_s", "p50", "p95", "p99"))
        for name, hist in rows[:max_phases]:
            lines.append("%-28s %7d %9.3f %s %s %s"
                         % (name[:28], hist.count, hist.total,
                            _fmt_seconds(hist.p50), _fmt_seconds(hist.p95),
                            _fmt_seconds(hist.p99)))
        if len(rows) > max_phases:
            lines.append("... %d more phases" % (len(rows) - max_phases))
    return "\n".join(lines)


def scrape(path):
    """Read + parse one snapshot; returns a Metrics registry or None
    when the source is not there yet (the run has not flushed, or the
    server is not up).  *path* is a snapshot file, or an ``http(s)://``
    URL — typically a ``repro netserve`` ``/metrics`` endpoint, which
    serves the same Prometheus exposition the snapshot file holds."""
    if path.startswith(("http://", "https://")):
        import urllib.error
        import urllib.request
        try:
            with urllib.request.urlopen(path, timeout=5.0) as response:
                text = response.read().decode("utf-8", "replace")
        except (urllib.error.URLError, OSError, ValueError):
            return None
    else:
        try:
            with open(path) as handle:
                text = handle.read()
        except OSError:
            return None
    return metrics_from_prometheus(text)


def run_top(path, interval=1.0, iterations=None, out=None, clear=True):
    """Redraw loop: scrape *path* every *interval* seconds and render.

    *iterations* bounds the loop (None = until interrupted); returns the
    number of frames drawn.  Frames are written to *out* (stdout by
    default); *clear* prepends the ANSI clear-screen sequence.
    """
    import sys
    out = out or sys.stdout
    frames = 0
    previous = None          # (answers, monotonic time) for the RPS diff
    while iterations is None or frames < iterations:
        metrics = scrape(path)
        now = time.monotonic()
        if metrics is None:
            body = "repro top -- %s\n(waiting for snapshot...)" % path
        else:
            rps = None
            answers = metrics.counters.get("serve.answers", 0)
            if previous is not None and now > previous[1]:
                rps = max(0, answers - previous[0]) / (now - previous[1])
            previous = (answers, now)
            try:
                age = time.time() - os.path.getmtime(path)
                source = "%s (age %.1fs)" % (path, age)
            except OSError:
                source = path
            body = render_top(metrics, source=source, rps=rps)
        out.write((_CLEAR if clear else "") + body + "\n")
        out.flush()
        frames += 1
        if iterations is not None and frames >= iterations:
            break
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            break
    return frames
