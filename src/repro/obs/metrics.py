"""Named counters, gauges and histograms for the solver pipeline.

A :class:`Metrics` registry is a plain in-process aggregator:

* **counters** (:meth:`Metrics.add`) — monotone totals such as
  ``sat.conflicts`` or ``smt.iterations``;
* **gauges** (:meth:`Metrics.gauge`) — last-write-wins values such as
  ``refinement.rounds``;
* **histograms** (:meth:`Metrics.observe`) — count/sum/min/max summaries
  of per-event sizes such as ``nfa.product_states``.

The disabled default is the :data:`NULL_METRICS` singleton, whose methods
do nothing; hot modules therefore keep their counts in local integers and
report once per call (see ``repro/sat/solver.py``), so the disabled-mode
overhead is one no-op method call per solver invocation, not per loop
iteration.  Check :attr:`Metrics.enabled` before computing an expensive
value to record.

``flat()`` renders everything into a one-level ``{name: number}`` dict
(histograms expand to ``name.count/.sum/.min/.max``), which is what
``TrauSolver`` merges into ``SolveResult.stats`` and the benchmark runner
attaches to its rows.
"""


class Histogram:
    """Streaming count/sum/min/max summary of observed values."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self):
        self.count = 0
        self.total = 0
        self.minimum = None
        self.maximum = None

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def merge(self, other):
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        if self.minimum is None or (other.minimum is not None
                                    and other.minimum < self.minimum):
            self.minimum = other.minimum
        if self.maximum is None or (other.maximum is not None
                                    and other.maximum > self.maximum):
            self.maximum = other.maximum

    def __repr__(self):
        return "Histogram(count=%d, sum=%s)" % (self.count, self.total)


class Metrics:
    """Registry of named counters, gauges and histograms."""

    enabled = True

    def __init__(self):
        self.counters = {}
        self.gauges = {}
        self.histograms = {}

    def add(self, name, value=1):
        """Increment counter *name* by *value*."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name, value):
        """Set gauge *name* to *value* (last write wins)."""
        self.gauges[name] = value

    def observe(self, name, value):
        """Record one sample of histogram *name*."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def merge(self, other):
        """Fold another registry into this one (counters add, gauges
        overwrite, histograms combine)."""
        for name, value in other.counters.items():
            self.add(name, value)
        self.gauges.update(other.gauges)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram()
            mine.merge(hist)

    def flat(self):
        """One-level ``{name: number}`` view of every instrument."""
        out = dict(self.counters)
        out.update(self.gauges)
        for name, hist in self.histograms.items():
            out[name + ".count"] = hist.count
            out[name + ".sum"] = hist.total
            out[name + ".min"] = hist.minimum
            out[name + ".max"] = hist.maximum
        return out

    def __repr__(self):
        return "Metrics(counters=%d, gauges=%d, histograms=%d)" % (
            len(self.counters), len(self.gauges), len(self.histograms))


class NullMetrics:
    """Metrics disabled: every operation is a no-op."""

    enabled = False
    counters = {}
    gauges = {}
    histograms = {}

    def add(self, name, value=1):
        pass

    def gauge(self, name, value):
        pass

    def observe(self, name, value):
        pass

    def merge(self, other):
        pass

    def flat(self):
        return {}


NULL_METRICS = NullMetrics()
