"""Named counters, gauges and histograms for the solver pipeline.

A :class:`Metrics` registry is a plain in-process aggregator:

* **counters** (:meth:`Metrics.add`) — monotone totals such as
  ``sat.conflicts`` or ``smt.iterations``;
* **gauges** (:meth:`Metrics.gauge`) — last-write-wins values such as
  ``refinement.rounds``;
* **histograms** (:meth:`Metrics.observe`) — bucketed distributions of
  per-event sizes such as ``nfa.product_states`` or per-phase durations.

The disabled default is the :data:`NULL_METRICS` singleton, whose methods
do nothing; hot modules therefore keep their counts in local integers and
report once per call (see ``repro/sat/solver.py``), so the disabled-mode
overhead is one no-op method call per solver invocation, not per loop
iteration.  Check :attr:`Metrics.enabled` before computing an expensive
value to record.

``flat()`` renders everything into a one-level ``{name: number}`` dict
(histograms expand to ``name.count/.sum/.min/.max``), which is what
``TrauSolver`` merges into ``SolveResult.stats`` and the benchmark runner
attaches to its rows.
"""


BUCKET_BOUNDS = tuple(10.0 ** (k / 2.0) for k in range(-12, 19))
"""Fixed log-spaced bucket upper bounds shared by every histogram:
half-decade steps from 1e-6 to 1e9 (31 bounds plus an overflow bucket).
Because the boundaries are global constants, any two histograms are
bucket-aligned and merge by adding counts — the property the
cross-process :class:`~repro.obs.pipeline.TelemetryAggregator` needs.
The range covers both microsecond phase durations and counters in the
hundreds of millions; values outside it land in the edge buckets and
quantiles are clamped to the exact observed min/max."""

_OVERFLOW = len(BUCKET_BOUNDS)


def _bucket_index(value):
    """Index of the first bound >= value (binary search, no deps)."""
    lo, hi = 0, _OVERFLOW
    while lo < hi:
        mid = (lo + hi) // 2
        if value <= BUCKET_BOUNDS[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo


class Histogram:
    """Bucketed summary of observed values with exact-ish quantiles.

    Tracks count/sum/min/max plus a sparse ``{bucket index: count}`` map
    over the fixed :data:`BUCKET_BOUNDS`.  Quantiles interpolate linearly
    inside the containing bucket and clamp to the observed min/max, so a
    constant series reports its exact value and every estimate is off by
    at most one half-decade bucket width.  ``merge`` and the
    ``to_dict``/``from_dict`` pair make the representation shippable
    across processes and mergeable in an aggregator.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0
        self.minimum = None
        self.maximum = None
        self.buckets = {}           # bucket index -> count (sparse)

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        index = _bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def quantile(self, q):
        """The q-quantile (0 <= q <= 1) by in-bucket interpolation."""
        if not self.count:
            return None
        rank = q * self.count
        cumulative = 0
        for index in sorted(self.buckets):
            here = self.buckets[index]
            if cumulative + here >= rank:
                low = 0.0 if index == 0 else BUCKET_BOUNDS[index - 1]
                high = BUCKET_BOUNDS[index] if index < _OVERFLOW \
                    else self.maximum
                fraction = (rank - cumulative) / here
                value = low + (high - low) * fraction
                return min(max(value, self.minimum), self.maximum)
            cumulative += here
        return self.maximum

    @property
    def p50(self):
        return self.quantile(0.50)

    @property
    def p95(self):
        return self.quantile(0.95)

    @property
    def p99(self):
        return self.quantile(0.99)

    def merge(self, other):
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        if self.minimum is None or (other.minimum is not None
                                    and other.minimum < self.minimum):
            self.minimum = other.minimum
        if self.maximum is None or (other.maximum is not None
                                    and other.maximum > self.maximum):
            self.maximum = other.maximum
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count

    def to_dict(self):
        """JSON-able mergeable representation (the shipping format)."""
        return {"count": self.count, "sum": self.total,
                "min": self.minimum, "max": self.maximum,
                "buckets": sorted([i, n] for i, n in self.buckets.items())}

    @classmethod
    def from_dict(cls, data):
        hist = cls()
        hist.count = data["count"]
        hist.total = data["sum"]
        hist.minimum = data["min"]
        hist.maximum = data["max"]
        hist.buckets = {int(i): n for i, n in data.get("buckets", ())}
        return hist

    def cumulative_buckets(self):
        """``[(upper bound, cumulative count), ...]`` over the non-empty
        bucket range plus the +Inf total — Prometheus exposition shape."""
        rows = []
        if self.buckets:
            first = min(self.buckets)
            last = min(max(self.buckets), _OVERFLOW - 1)
            cumulative = 0
            for index in range(first, last + 1):
                cumulative += self.buckets.get(index, 0)
                rows.append((BUCKET_BOUNDS[index], cumulative))
        rows.append((float("inf"), self.count))
        return rows

    def __repr__(self):
        return "Histogram(count=%d, sum=%s)" % (self.count, self.total)


class Metrics:
    """Registry of named counters, gauges and histograms."""

    enabled = True

    def __init__(self):
        self.counters = {}
        self.gauges = {}
        self.histograms = {}

    def add(self, name, value=1):
        """Increment counter *name* by *value*."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name, value):
        """Set gauge *name* to *value* (last write wins)."""
        self.gauges[name] = value

    def observe(self, name, value):
        """Record one sample of histogram *name*."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def merge(self, other):
        """Fold another registry into this one (counters add, gauges
        overwrite, histograms combine)."""
        for name, value in other.counters.items():
            self.add(name, value)
        self.gauges.update(other.gauges)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram()
            mine.merge(hist)

    def flat(self):
        """One-level ``{name: number}`` view of every instrument."""
        out = dict(self.counters)
        out.update(self.gauges)
        for name, hist in self.histograms.items():
            out[name + ".count"] = hist.count
            out[name + ".sum"] = hist.total
            out[name + ".min"] = hist.minimum
            out[name + ".max"] = hist.maximum
            if hist.count:
                out[name + ".p50"] = hist.p50
                out[name + ".p95"] = hist.p95
                out[name + ".p99"] = hist.p99
        return out

    def __repr__(self):
        return "Metrics(counters=%d, gauges=%d, histograms=%d)" % (
            len(self.counters), len(self.gauges), len(self.histograms))


class NullMetrics:
    """Metrics disabled: every operation is a no-op."""

    enabled = False
    counters = {}
    gauges = {}
    histograms = {}

    def add(self, name, value=1):
        pass

    def gauge(self, name, value):
        pass

    def observe(self, name, value):
        pass

    def merge(self, other):
        pass

    def flat(self):
        return {}


NULL_METRICS = NullMetrics()
