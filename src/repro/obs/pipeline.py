"""Cross-process telemetry: the delta-shipping protocol and aggregator.

The PR 1 tracer/metrics layer is strictly in-process, but since the
serving layer moved all real work into spawn-based
:class:`~repro.serve.pool.WorkerPool` children, every span and counter
produced where the solving actually happens used to die with its worker.
This module is the bridge:

* **Delta protocol** — a worker serializes one request's telemetry (its
  scope's counters, gauges, mergeable histograms, per-phase durations
  derived from the span tree, and a bounded copy of the span records)
  into a plain JSON-able dict via :func:`telemetry_delta`, shipped in
  the result envelope; worker-lifetime counters travel on periodic
  flushes encoded by :func:`encode_metrics`.  A delta is *complete and
  disjoint*: every registry it encodes is fresh per request (or reset
  per flush), so ingesting each delta exactly once reconstructs the
  totals with no double counting.
* **:class:`TelemetryAggregator`** — the parent-side sink: merges every
  delta into one :class:`~repro.obs.metrics.Metrics` registry, tracks
  per-worker delta counts, and renders a combined export view for the
  Prometheus exporter, ``repro top``, and the ``--trace`` report.

The per-phase histograms (``phase.<span name>_s``) are the contract the
acceptance test checks: one observation per span occurrence, so the
aggregator's histogram counts equal the sum of all workers' in-process
span counts.
"""

import time

from repro.obs.metrics import Histogram, Metrics

SPAN_RECORD_CAP = 512
"""Upper bound on span/event records carried by one delta — a runaway
span tree (thousands of refinement rounds) must not balloon the result
envelope; the metric side of the delta is never truncated."""


def encode_metrics(metrics):
    """A :class:`Metrics` registry as a JSON-able/picklable dict."""
    return {
        "counters": dict(metrics.counters),
        "gauges": dict(metrics.gauges),
        "histograms": {name: hist.to_dict()
                       for name, hist in metrics.histograms.items()},
    }


def decode_metrics(data, into=None):
    """Rebuild (or merge into *into*) a registry from its encoded form."""
    metrics = into if into is not None else Metrics()
    for name, value in data.get("counters", {}).items():
        metrics.add(name, value)
    for name, value in data.get("gauges", {}).items():
        metrics.gauge(name, value)
    for name, encoded in data.get("histograms", {}).items():
        hist = metrics.histograms.get(name)
        if hist is None:
            hist = metrics.histograms[name] = Histogram()
        hist.merge(Histogram.from_dict(encoded))
    return metrics


def phase_histograms(tracer, metrics=None):
    """Observe every closed span's duration into ``phase.<name>_s``.

    One observation per span *occurrence* (a three-round solve yields
    three ``phase.round_s`` samples), into *metrics* (or a fresh
    registry) — the mergeable per-phase cost attribution the router and
    the exporter consume.
    """
    metrics = metrics if metrics is not None else Metrics()
    for _, span in tracer.walk():
        if span.duration is not None:
            metrics.observe("phase.%s_s" % span.name, span.duration)
    return metrics


def span_records(tracer, cap=SPAN_RECORD_CAP):
    """Bounded JSON-able span/event records (the flight-recorder view)."""
    from repro.obs.export import iter_records
    records = iter_records(tracer)
    if len(records) > cap:
        records = records[:cap]
        records.append({"type": "event", "name": "telemetry.truncated",
                        "depth": 0, "attrs": {"cap": cap}})
    return records


def telemetry_delta(tracer, metrics, spans=True):
    """One request's complete telemetry as a shippable delta dict.

    *tracer*/*metrics* must be the request's own fresh scope (that is
    what makes the result a delta rather than a snapshot).  Span-derived
    per-phase histograms are folded into the metric payload; the raw
    span records ride along (bounded) for the flight recorder.
    """
    combined = Metrics()
    combined.merge(metrics)
    phase_histograms(tracer, combined)
    delta = encode_metrics(combined)
    if spans:
        delta["spans"] = span_records(tracer)
    return delta


class TelemetryAggregator:
    """Parent-side merge point for worker telemetry deltas.

    ``ingest`` folds one delta into the central registry; ``combined``
    renders the export view (central registry + an optional extra
    in-process registry + freshness gauges) that the Prometheus
    exporter, ``repro top`` and the trace report all read.  Metrics the
    serving layer produces in the parent process (queue gauges, verdict
    counters) can be pointed straight at :attr:`metrics`.
    """

    def __init__(self, clock=time.monotonic):
        self._clock = clock
        self.started = clock()
        self.metrics = Metrics()
        self.ingested = 0
        self.per_worker = {}        # worker label -> deltas ingested

    def ingest(self, delta, worker=None):
        """Merge one delta (an :func:`encode_metrics`-shaped dict)."""
        if not delta:
            return
        decode_metrics(delta, into=self.metrics)
        self.ingested += 1
        if worker is not None:
            key = str(worker)
            self.per_worker[key] = self.per_worker.get(key, 0) + 1

    def ingest_scope(self, tracer, metrics):
        """Merge an in-process (tracer, metrics) pair — the single-
        process path ``repro fuzz``/``bench`` use so their reports read
        through the same pipeline as the serving layer."""
        self.ingest(telemetry_delta(tracer, metrics, spans=False))

    @property
    def uptime(self):
        return self._clock() - self.started

    def phase_stats(self):
        """``[(phase name, Histogram)]`` sorted by total time, descending."""
        rows = [(name[len("phase."):-len("_s")], hist)
                for name, hist in self.metrics.histograms.items()
                if name.startswith("phase.") and name.endswith("_s")]
        rows.sort(key=lambda row: (-row[1].total, row[0]))
        return rows

    def combined(self, extra=None):
        """The export view: central registry + *extra* (an in-process
        registry, merged non-destructively) + aggregator gauges."""
        view = Metrics()
        view.merge(self.metrics)
        if extra is not None and extra.enabled:
            view.merge(extra)
        view.gauge("telemetry.uptime_s", self.uptime)
        view.gauge("telemetry.deltas", self.ingested)
        view.gauge("telemetry.workers", len(self.per_worker))
        for worker, count in sorted(self.per_worker.items()):
            view.gauge("telemetry.deltas.worker.%s" % worker, count)
        return view

    def __repr__(self):
        return "TelemetryAggregator(deltas=%d, workers=%d)" % (
            self.ingested, len(self.per_worker))
