"""Command-line interface: solve SMT-LIB files with the PFA solver.

Usage::

    python -m repro FILE.smt2 [--timeout S] [--solver pfa|splitting|enum]
                              [--model] [--validate]
                              [--trace] [--trace-json FILE]
    python -m repro selfcheck [--trace]

Prints ``sat``/``unsat``/``unknown`` like an SMT solver; ``--model`` adds
a ``(model ...)`` block with the string/integer assignments.  ``--trace``
appends the per-phase span tree and metrics table (as ``;``-prefixed
SMT-LIB comments, so the output stays parseable); ``--trace-json FILE``
writes the same data as a JSON-lines event log.

``selfcheck`` runs a handful of built-in queries through the full
pipeline and exits non-zero on any wrong status — a smoke test for CI.
"""

import argparse
import sys

from repro.baselines import EnumerativeSolver, SplittingSolver
from repro.config import SolverConfig
from repro.core.solver import TrauSolver
from repro.obs import Metrics, Tracer, dump_jsonl, render_report, scope
from repro.smtlib import load_problem
from repro.strings import check_model

_SOLVERS = {
    "pfa": TrauSolver,
    "splitting": SplittingSolver,
    "enum": EnumerativeSolver,
}


def _escape(text):
    return text.replace('"', '""')


def format_model(problem, model):
    lines = ["(model"]
    for v in sorted(problem.string_vars(), key=lambda s: s.name):
        lines.append('  (define-fun %s () String "%s")'
                     % (v.name, _escape(model.get(v.name, ""))))
    for name in sorted(problem.int_vars()):
        value = model.get(name, 0)
        rendered = str(value) if value >= 0 else "(- %d)" % -value
        lines.append("  (define-fun %s () Int %s)" % (name, rendered))
    lines.append(")")
    return "\n".join(lines)


def _print_trace(tracer, metrics):
    """The span tree + metrics table as SMT-LIB comment lines."""
    report = render_report(tracer, metrics)
    for line in report.splitlines():
        print("; " + line if line else ";")


def main(argv=None):
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "selfcheck":
        return selfcheck(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description="PFA-based string constraint solver "
                    "(PLDI 2020 reproduction)")
    parser.add_argument("file", help="SMT-LIB 2 input file ('-' for stdin)")
    parser.add_argument("--timeout", type=float, default=10.0)
    parser.add_argument("--solver", choices=sorted(_SOLVERS), default="pfa")
    parser.add_argument("--model", action="store_true",
                        help="print a model for sat answers")
    parser.add_argument("--validate", action="store_true",
                        help="re-check sat models concretely and report")
    parser.add_argument("--trace", action="store_true",
                        help="print the span tree and metrics after the "
                             "answer (as ; comments)")
    parser.add_argument("--trace-json", metavar="FILE",
                        help="write the trace as JSON-lines to FILE "
                             "('-' for stdout)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the memoization caches and "
                             "cross-round incremental solving")
    args = parser.parse_args(argv)

    text = sys.stdin.read() if args.file == "-" else open(args.file).read()
    script = load_problem(text)
    if args.solver == "pfa" and args.no_cache:
        solver = TrauSolver(config=SolverConfig(use_caches=False,
                                                use_incremental=False))
    else:
        solver = _SOLVERS[args.solver]()

    tracing = args.trace or args.trace_json
    tracer = Tracer() if tracing else None
    metrics = Metrics() if tracing else None
    with scope(tracer, metrics):
        result = solver.solve(script.problem, timeout=args.timeout)

    print(result.status)
    if result.status == "sat":
        if args.validate:
            ok = check_model(script.problem, result.model)
            print("; model %s" % ("validates" if ok else "FAILS validation"))
        if args.model:
            print(format_model(script.problem, result.model))
    if args.trace:
        _print_trace(tracer, metrics)
    if args.trace_json:
        if args.trace_json == "-":
            dump_jsonl(tracer, metrics, sys.stdout)
        else:
            with open(args.trace_json, "w") as handle:
                dump_jsonl(tracer, metrics, handle)
    if script.expected and result.status in ("sat", "unsat") \
            and result.status != script.expected:
        print("; WARNING: expected status was %s" % script.expected)
        return 1
    return 0


# -- selfcheck ---------------------------------------------------------------


def _selfcheck_problems():
    """Built-in queries covering both phases and both final statuses."""
    from repro.logic import eq, ge
    from repro.strings import ProblemBuilder, str_len
    from repro.logic.terms import var

    sat_conv = ProblemBuilder()
    x = sat_conv.str_var("x")
    n = sat_conv.to_num(x)
    sat_conv.require_int(eq(var(n), 10))
    sat_conv.require_int(eq(str_len(x), 5))

    unsat_re = ProblemBuilder()
    y = unsat_re.str_var("y")
    unsat_re.member(y, "[0-9]{2}")
    unsat_re.require_int(ge(str_len(y), 3))

    sat_eq = ProblemBuilder()
    u = sat_eq.str_var("u")
    sat_eq.equal(("0", u), (u, "0"))
    sat_eq.require_int(eq(str_len(u), 3))

    return [("tonum-padded", sat_conv.problem, "sat"),
            ("regex-length", unsat_re.problem, "unsat"),
            ("periodic-eq", sat_eq.problem, "sat")]


def selfcheck(argv=None):
    """Solve the built-in queries; non-zero exit on any wrong status."""
    parser = argparse.ArgumentParser(
        prog="repro selfcheck",
        description="smoke-test the solver pipeline on built-in queries")
    parser.add_argument("--trace", action="store_true",
                        help="print one span tree + metrics per query")
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the memoization caches and "
                             "cross-round incremental solving")
    args = parser.parse_args(argv)

    config = SolverConfig(use_caches=False, use_incremental=False) \
        if args.no_cache else SolverConfig()
    failures = 0
    for name, problem, expected in _selfcheck_problems():
        tracer = Tracer() if args.trace else None
        metrics = Metrics() if args.trace else None
        with scope(tracer, metrics):
            result = TrauSolver(config=config).solve(
                problem, timeout=args.timeout)
        ok = result.status == expected
        failures += 0 if ok else 1
        print("%-14s %-7s expected=%-7s %s  (%.3fs)"
              % (name, result.status, expected, "ok" if ok else "FAIL",
                 result.stats.get("elapsed_s", 0.0)))
        if args.trace:
            _print_trace(tracer, metrics)
    print("selfcheck: %s" % ("ok" if failures == 0
                             else "%d failure(s)" % failures))
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
