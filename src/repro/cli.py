"""Command-line interface: solve SMT-LIB files with the PFA solver.

Usage::

    python -m repro FILE.smt2 [--timeout S] [--solver pfa|splitting|enum]
                              [--model] [--validate]

Prints ``sat``/``unsat``/``unknown`` like an SMT solver; ``--model`` adds
a ``(model ...)`` block with the string/integer assignments.
"""

import argparse
import sys

from repro.baselines import EnumerativeSolver, SplittingSolver
from repro.core.solver import TrauSolver
from repro.smtlib import load_problem
from repro.strings import check_model

_SOLVERS = {
    "pfa": TrauSolver,
    "splitting": SplittingSolver,
    "enum": EnumerativeSolver,
}


def _escape(text):
    return text.replace('"', '""')


def format_model(problem, model):
    lines = ["(model"]
    for v in sorted(problem.string_vars(), key=lambda s: s.name):
        lines.append('  (define-fun %s () String "%s")'
                     % (v.name, _escape(model.get(v.name, ""))))
    for name in sorted(problem.int_vars()):
        value = model.get(name, 0)
        rendered = str(value) if value >= 0 else "(- %d)" % -value
        lines.append("  (define-fun %s () Int %s)" % (name, rendered))
    lines.append(")")
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PFA-based string constraint solver "
                    "(PLDI 2020 reproduction)")
    parser.add_argument("file", help="SMT-LIB 2 input file ('-' for stdin)")
    parser.add_argument("--timeout", type=float, default=10.0)
    parser.add_argument("--solver", choices=sorted(_SOLVERS), default="pfa")
    parser.add_argument("--model", action="store_true",
                        help="print a model for sat answers")
    parser.add_argument("--validate", action="store_true",
                        help="re-check sat models concretely and report")
    args = parser.parse_args(argv)

    text = sys.stdin.read() if args.file == "-" else open(args.file).read()
    script = load_problem(text)
    solver = _SOLVERS[args.solver]()
    result = solver.solve(script.problem, timeout=args.timeout)

    print(result.status)
    if result.status == "sat":
        if args.validate:
            ok = check_model(script.problem, result.model)
            print("; model %s" % ("validates" if ok else "FAILS validation"))
        if args.model:
            print(format_model(script.problem, result.model))
    if script.expected and result.status in ("sat", "unsat") \
            and result.status != script.expected:
        print("; WARNING: expected status was %s" % script.expected)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
