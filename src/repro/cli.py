"""Command-line interface: solve SMT-LIB files with the PFA solver.

Usage::

    python -m repro FILE.smt2 [--timeout S] [--solver pfa|splitting|enum]
                              [--model] [--validate]
                              [--trace] [--trace-json FILE]
                              [--profile-hot N]
                              [--max-bb-nodes N] [--max-smt-iterations N]
                              [--max-automata-states N]
                              [--inject-fault SPEC]
    python -m repro selfcheck [--trace] [--allow-unknown] [budget flags]
    python -m repro serve-batch PATH... [--pool-jobs N] [--portfolio]
                                [--timeout S] [--results-json FILE]
                                [--metrics-out FILE] [--flight-dir DIR]
                                [--slo S]
    python -m repro fuzz [--seed N] [--n N] [--max-len N]
                         [--save-failures DIR] [--lie-rate R] [--trace]
                         [--metrics-out FILE]
    python -m repro top SNAPSHOT_OR_URL [--interval S] [--iterations N]
    python -m repro netserve [--port N] [--shards N] [--jobs N]
                             [--api-key NAME=KEY[:RPS[:BURST]]]
                             [--admin-key KEY] [--store DIR]
                             [--metrics-out FILE]
    python -m repro loadgen [--rps N] [--requests N] [--json FILE]

Prints ``sat``/``unsat``/``unknown`` like an SMT solver; ``--model`` adds
a ``(model ...)`` block with the string/integer assignments.  ``--trace``
appends the per-phase span tree and metrics table (as ``;``-prefixed
SMT-LIB comments, so the output stays parseable); ``--trace-json FILE``
writes the same data as a JSON-lines event log.

Robustness knobs: the ``--max-*`` flags bound individual resource
dimensions of the unified :class:`~repro.config.Budget` (an exhausted
budget yields an UNKNOWN whose ``stopped_by`` names the tripped limit),
and ``--inject-fault SPEC`` (repeatable; also the ``REPRO_INJECT_FAULT``
environment variable) arms deterministic faults at internal seams to
exercise the degradation ladder — see :mod:`repro.faults`.

``selfcheck`` runs a handful of built-in queries through the full
pipeline and exits non-zero on any wrong status — a smoke test for CI.
With ``--allow-unknown`` an UNKNOWN answer passes as long as it is
*attributable* (its stats name the tripped budget), which is how the CI
chaos job asserts tiny budgets degrade gracefully instead of erroring.

``fuzz`` runs a differential + metamorphic fuzzing campaign through
:mod:`repro.diff`: seeded random problems are solved by both TrauSolver
pipelines and the enumerative oracle, definite verdicts are
cross-checked (and checked for stability under satisfiability-
preserving transforms), and every disagreement is shrunk to a minimal
``.smt2`` reproducer under ``--save-failures DIR``.  Exits non-zero on
any disagreement.

``netserve`` puts the same supervised stack on a TCP port
(:mod:`repro.serve.net`): N ``SolverService`` shards behind a
fingerprint-hashing router with request coalescing, a verdict cache,
per-shard circuit breakers, token-bucket tenant quotas and bounded
intake at the door, and client deadlines propagated down to the worker
``Budget``.  Speaks HTTP/1.1 (``POST /solve``, ``GET /metrics``) and
length-prefixed JSON on one port; SIGTERM drains gracefully.
``loadgen`` is its chaos proof: a controlled-rate load harness that
kills a shard and arms ``net.*`` faults mid-run and asserts every
request still gets a well-formed answer (see
:mod:`repro.bench.loadgen`).

``serve-batch`` solves a directory (or list) of SMT-LIB files through
the supervised :class:`~repro.serve.service.SolverService`: a pool of
``--pool-jobs`` isolated worker processes with hard deadlines,
worker-death retries, poison-pill quarantine, and — with
``--portfolio`` — a cross-checked race between the incremental and
one-shot pipelines.  Every file gets exactly one answer; SIGTERM drains
gracefully (in-flight work finishes or is killed at its deadline,
queued files answer ``unknown(shutdown)``) and still exits zero.
``--request-fault 'NAME[@LABEL]=SPEC'`` arms a serve-layer fault for
one request (optionally one portfolio arm) — the chaos-soak instrument.

Telemetry: ``--metrics-out FILE`` attaches a
:class:`~repro.obs.pipeline.TelemetryAggregator` (worker-side spans and
counters are shipped back over the pool's delta protocol) and
periodically rewrites FILE as a Prometheus text-exposition snapshot —
``python -m repro top FILE`` watches it live, and the same file is what
a ``/metrics`` endpoint would serve.  ``--flight-dir DIR`` and
``--slo S`` arm the per-request flight recorder: commented-JSON black
boxes are dumped to DIR when a request degrades, blows the SLO, is
hard-killed, or is quarantined.  ``--profile-hot N`` (single-file mode)
runs the deterministic sampling profiler and prints the N hottest
(phase stack, call site) rows.
"""

import argparse
import glob
import os
import signal
import sys

from repro import faults
from repro.baselines import EnumerativeSolver, SplittingSolver
from repro.config import SolverConfig
from repro.core.solver import TrauSolver
from repro.obs import Metrics, Tracer, dump_jsonl, render_report, scope
from repro.smtlib import load_problem
from repro.smtlib.printer import _escape
from repro.strings import check_model

_SOLVERS = {
    "pfa": TrauSolver,
    "splitting": SplittingSolver,
    "enum": EnumerativeSolver,
}


def format_model(problem, model):
    lines = ["(model"]
    for v in sorted(problem.string_vars(), key=lambda s: s.name):
        lines.append('  (define-fun %s () String "%s")'
                     % (v.name, _escape(model.get(v.name, ""))))
    for name in sorted(problem.int_vars()):
        value = model.get(name, 0)
        rendered = str(value) if value >= 0 else "(- %d)" % -value
        lines.append("  (define-fun %s () Int %s)" % (name, rendered))
    lines.append(")")
    return "\n".join(lines)


def _print_trace(tracer, metrics):
    """The span tree + metrics table as SMT-LIB comment lines."""
    report = render_report(tracer, metrics)
    for line in report.splitlines():
        print("; " + line if line else ";")


def _add_budget_arguments(parser):
    parser.add_argument("--max-bb-nodes", type=int, default=None, metavar="N",
                        help="bound the branch-and-bound search tree; "
                             "tripping it yields an attributable unknown")
    parser.add_argument("--max-smt-iterations", type=int, default=None,
                        metavar="N",
                        help="bound DPLL(T) iterations per solver call")
    parser.add_argument("--max-automata-states", type=int, default=None,
                        metavar="N",
                        help="bound the state count of automata products "
                             "and determinizations")


def _add_backend_argument(parser):
    parser.add_argument("--backend", choices=("auto", "pure", "packed"),
                        default=None,
                        help="kernel backend for the hot loops (SAT, "
                             "simplex, automata products); auto picks "
                             "packed when importable, honouring the "
                             "REPRO_BACKEND environment variable")


def _add_store_argument(parser):
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="directory of the crash-safe persistent solve "
                             "store, shared across runs and pool workers "
                             "(the REPRO_STORE environment variable is the "
                             "ambient default)")


def _build_config(args):
    """A SolverConfig from the CLI's robustness flags."""
    kwargs = {}
    if getattr(args, "store", None):
        # Also installed as the process default so the cache-layer
        # persistence (automata ops, regex compiles, length hints)
        # engages in this process, not just in config-carrying solves.
        from repro import store as _store
        _store.set_default_path(args.store)
        kwargs["store_path"] = args.store
    if getattr(args, "no_cache", False):
        kwargs.update(use_caches=False, use_incremental=False)
    if getattr(args, "backend", None):
        kwargs["backend"] = args.backend
    if args.max_bb_nodes is not None:
        kwargs["bb_node_limit"] = args.max_bb_nodes
    if args.max_smt_iterations is not None:
        kwargs["smt_iteration_limit"] = args.max_smt_iterations
    if args.max_automata_states is not None:
        kwargs["automata_state_limit"] = args.max_automata_states
    if getattr(args, "inject_fault", None):
        try:
            specs = tuple(faults.parse_spec(s) for s in args.inject_fault)
        except ValueError as exc:
            raise SystemExit("repro: bad --inject-fault spec: %s" % exc)
        kwargs["fault_specs"] = specs
    return SolverConfig(**kwargs)


def main(argv=None):
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "selfcheck":
        return selfcheck(argv[1:])
    if argv and argv[0] == "serve-batch":
        return serve_batch(argv[1:])
    if argv and argv[0] == "fuzz":
        return fuzz(argv[1:])
    if argv and argv[0] == "top":
        return top(argv[1:])
    if argv and argv[0] == "netserve":
        return netserve(argv[1:])
    if argv and argv[0] == "loadgen":
        return loadgen(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description="PFA-based string constraint solver "
                    "(PLDI 2020 reproduction)")
    parser.add_argument("file", help="SMT-LIB 2 input file ('-' for stdin)")
    parser.add_argument("--timeout", type=float, default=10.0)
    parser.add_argument("--solver", choices=sorted(_SOLVERS), default="pfa")
    parser.add_argument("--model", action="store_true",
                        help="print a model for sat answers")
    parser.add_argument("--validate", action="store_true",
                        help="re-check sat models concretely and report")
    parser.add_argument("--trace", action="store_true",
                        help="print the span tree and metrics after the "
                             "answer (as ; comments)")
    parser.add_argument("--trace-json", metavar="FILE",
                        help="write the trace as JSON-lines to FILE "
                             "('-' for stdout)")
    parser.add_argument("--profile-hot", type=int, default=None,
                        metavar="N",
                        help="run the deterministic sampling profiler and "
                             "print the N hottest (phase, call site) rows "
                             "(as ; comments); implies span tracing")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the memoization caches and "
                             "cross-round incremental solving")
    _add_backend_argument(parser)
    _add_budget_arguments(parser)
    _add_store_argument(parser)
    parser.add_argument("--inject-fault", action="append", default=[],
                        metavar="SPEC",
                        help="arm a deterministic fault at an internal seam "
                             "(repeatable); SPEC is point[:mode[:k=v,...]], "
                             "e.g. smt.session.solve:raise:after=1")
    args = parser.parse_args(argv)

    faults.arm_from_env()
    text = sys.stdin.read() if args.file == "-" else open(args.file).read()
    script = load_problem(text)
    if args.solver == "pfa":
        solver = TrauSolver(config=_build_config(args))
    else:
        solver = _SOLVERS[args.solver]()

    tracing = args.trace or args.trace_json or args.profile_hot
    tracer = Tracer() if tracing else None
    metrics = Metrics() if tracing else None
    profiler = None
    with scope(tracer, metrics):
        if args.profile_hot:
            from repro.obs.profile import SamplingProfiler
            profiler = SamplingProfiler()
            with profiler:
                result = solver.solve(script.problem, timeout=args.timeout)
        else:
            result = solver.solve(script.problem, timeout=args.timeout)

    print(result.status)
    if result.status == "sat":
        if args.validate:
            ok = check_model(script.problem, result.model)
            print("; model %s" % ("validates" if ok else "FAILS validation"))
        if args.model:
            print(format_model(script.problem, result.model))
    if args.trace:
        _print_trace(tracer, metrics)
    if profiler is not None:
        for line in profiler.report(args.profile_hot).splitlines():
            print("; " + line if line else ";")
    if args.trace_json:
        if args.trace_json == "-":
            dump_jsonl(tracer, metrics, sys.stdout)
        else:
            with open(args.trace_json, "w") as handle:
                dump_jsonl(tracer, metrics, handle)
    if script.expected and result.status in ("sat", "unsat") \
            and result.status != script.expected:
        print("; WARNING: expected status was %s" % script.expected)
        return 1
    return 0


# -- serve-batch -------------------------------------------------------------


def _collect_smt_files(paths):
    """Expand directories into their sorted ``*.smt2`` contents."""
    files = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(sorted(glob.glob(os.path.join(path, "*.smt2"))))
        else:
            files.append(path)
    return files


def _parse_request_faults(values):
    """``NAME[@LABEL]=SPEC`` options -> {name: {label-or-"": [spec,...]}}."""
    table = {}
    for value in values:
        target, sep, spec = value.partition("=")
        if not sep or not spec.strip():
            raise SystemExit("repro: bad --request-fault %r "
                             "(want NAME[@LABEL]=SPEC)" % value)
        name, _, label = target.partition("@")
        table.setdefault(name.strip(), {}).setdefault(
            label.strip(), []).append(spec.strip())
    return table


def serve_batch(argv=None):
    """Solve a corpus of SMT-LIB files through the supervised service."""
    from repro.serve import PortfolioEntry, ServeResult, SolverService

    parser = argparse.ArgumentParser(
        prog="repro serve-batch",
        description="solve SMT-LIB files through the supervised "
                    "SolverService (worker pool, backpressure, "
                    "quarantine, optional portfolio)")
    parser.add_argument("paths", nargs="+", metavar="PATH",
                        help="SMT-LIB files and/or directories of *.smt2")
    parser.add_argument("--pool-jobs", type=int, default=2, metavar="N",
                        help="worker processes in the pool (default 2)")
    parser.add_argument("--portfolio", action="store_true",
                        help="race the incremental and one-shot pipelines "
                             "per request and cross-check the verdicts")
    parser.add_argument("--timeout", type=float, default=10.0,
                        help="per-request solver budget in seconds")
    parser.add_argument("--grace", type=float, default=2.0,
                        help="seconds past the budget before a worker is "
                             "hard-killed")
    parser.add_argument("--queue-limit", type=int, default=64,
                        help="max open requests before backpressure")
    parser.add_argument("--max-retries", type=int, default=2,
                        help="retries after a worker death (with backoff)")
    parser.add_argument("--quarantine-threshold", type=int, default=3,
                        metavar="K",
                        help="kills/hangs before an instance is quarantined")
    parser.add_argument("--results-json", metavar="FILE",
                        help="write one JSON row per request ('-' stdout)")
    parser.add_argument("--metrics-out", metavar="FILE",
                        help="enable worker telemetry shipping and "
                             "periodically rewrite FILE as a Prometheus "
                             "text-exposition snapshot (watch it with "
                             "`python -m repro top FILE`)")
    parser.add_argument("--metrics-interval", type=float, default=2.0,
                        metavar="S",
                        help="seconds between --metrics-out rewrites "
                             "(default 2)")
    parser.add_argument("--flight-dir", metavar="DIR", default=None,
                        help="dump flight-recorder artifacts (commented "
                             "JSON) to DIR on degraded/SLO/hard-kill/"
                             "quarantine triggers")
    parser.add_argument("--slo", type=float, default=None, metavar="S",
                        help="latency SLO in seconds; a request over it "
                             "triggers a worker flight dump")
    parser.add_argument("--trace", action="store_true",
                        help="print serve spans and metrics after the run")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable caches/incremental in the workers")
    _add_backend_argument(parser)
    _add_budget_arguments(parser)
    _add_store_argument(parser)
    parser.add_argument("--inject-fault", action="append", default=[],
                        metavar="SPEC",
                        help="arm a solver-level fault in every request")
    parser.add_argument("--request-fault", action="append", default=[],
                        metavar="NAME[@LABEL]=SPEC",
                        help="arm a serve-layer fault for one request "
                             "(optionally one portfolio arm); repeatable")
    args = parser.parse_args(argv)

    from dataclasses import replace

    config = _build_config(args)
    if args.backend:
        # Workers follow their pickled config, but an explicit request
        # also rides the environment so anything a worker re-spawns (or
        # resolves outside a config scope) agrees with the parent.
        os.environ["REPRO_BACKEND"] = args.backend
    portfolio = None
    if args.portfolio:
        portfolio = (PortfolioEntry("incremental", config),
                     PortfolioEntry("oneshot",
                                    replace(config, use_incremental=False,
                                            use_caches=False)))
    request_faults = _parse_request_faults(args.request_fault)

    files = _collect_smt_files(args.paths)
    if not files:
        raise SystemExit("repro: no .smt2 files under %s"
                         % ", ".join(args.paths))
    parse_rows = []     # files that never reach the service
    items = []          # (name, problem) really submitted
    expected = {}
    for path in files:
        name = os.path.splitext(os.path.basename(path))[0]
        try:
            script = load_problem(open(path).read())
        except Exception as exc:
            parse_rows.append(ServeResult(name, "unknown",
                                          reason="parse-error",
                                          stats={"error": str(exc)}))
            continue
        expected[name] = script.expected
        items.append((name, script.problem))

    stop = {"flag": False}

    def _on_signal(signum, frame):
        stop["flag"] = True

    previous = {signum: signal.signal(signum, _on_signal)
                for signum in (signal.SIGTERM, signal.SIGINT)}

    tracer = Tracer() if args.trace else None
    metrics = Metrics() if args.trace else None
    aggregator = None
    if args.metrics_out or args.trace:
        from repro.obs import TelemetryAggregator
        aggregator = TelemetryAggregator()

    import time as _time
    last_snapshot = [0.0]

    def _snapshot(force=False):
        if aggregator is None or not args.metrics_out:
            return
        now = _time.monotonic()
        if force or now - last_snapshot[0] >= args.metrics_interval:
            from repro.obs import write_snapshot
            write_snapshot(args.metrics_out, aggregator, extra=metrics)
            last_snapshot[0] = now

    service = SolverService(
        config=config, portfolio=portfolio, jobs=args.pool_jobs,
        timeout=args.timeout, grace=args.grace,
        queue_limit=args.queue_limit, max_retries=args.max_retries,
        quarantine_threshold=args.quarantine_threshold,
        aggregator=aggregator, flight_dir=args.flight_dir,
        slo_seconds=args.slo, store_path=args.store)
    try:
        with scope(tracer, metrics):
            # Mirrors SolverService.run_batch, hand-rolled so the
            # --request-fault specs can ride along per submit call.
            handles = []
            for name, problem in items:
                while (not stop["flag"]
                       and service.open_requests >= service.queue_limit):
                    service.pump(0.05)
                    _snapshot()
                if stop["flag"]:
                    handles.append(ServeResult(name, "unknown",
                                               reason="shutdown"))
                    continue
                spec_map = request_faults.get(name, {})
                handles.append(service.submit(
                    problem, name=name,
                    fault_specs=tuple(spec_map.get("", ())),
                    entry_fault_specs={label: tuple(specs)
                                       for label, specs in spec_map.items()
                                       if label}))
                service.pump(0.0)
            while not stop["flag"] and service.open_requests:
                service.pump(0.05)
                _snapshot()
            # Drains in-flight work, answers the rest unknown(shutdown),
            # reaps every worker; a no-op queue-wise when all answered.
            service.shutdown(drain=True)
            results = [h if isinstance(h, ServeResult) else h.result
                       for h in handles]
        _snapshot(force=True)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    rows = parse_rows + results
    counts = {"sat": 0, "unsat": 0, "unknown": 0}
    incorrect = 0
    for row in rows:
        if row is None:          # a lost request — must never happen
            continue
        counts[row.status] = counts.get(row.status, 0) + 1
        mark = ""
        if row.status == "unsat" and expected.get(row.name) == "sat":
            # A validated SAT outranks a label, but an UNSAT against a
            # certified-SAT instance is a wrong verdict.
            incorrect += 1
            mark = "  INCORRECT(expected sat)"
        winner = (" [%s]" % row.winner) if row.winner else ""
        # Per-request degradation story (satellite of the telemetry PR):
        # these used to be buried inside the stats blob.
        extras = []
        for key in ("degraded_to", "stopped_by", "budget_tripped"):
            if row.stats.get(key):
                extras.append("%s=%s" % (key, row.stats[key]))
        if row.retries:
            extras.append("retries=%d" % row.retries)
        note = ("  [%s]" % " ".join(extras)) if extras else ""
        print("%-24s %-22s %6.2fs%s%s%s"
              % (row.name, row.answer, row.seconds, winner, note, mark))

    answered = sum(1 for r in rows if r is not None)
    degraded = sum(1 for r in rows
                   if r is not None and r.stats.get("degraded_to"))
    tripped = sum(1 for r in rows
                  if r is not None and r.stats.get("budget_tripped"))
    pool_counters = service.pool.counters
    print("serve-batch: answered %d/%d (sat=%d unsat=%d unknown=%d) "
          "retries=%d hard-kills=%d worker-deaths=%d quarantined=%d "
          "recycled=%d degraded=%d budget-tripped=%d"
          % (answered, len(files), counts["sat"], counts["unsat"],
             counts["unknown"],
             sum(r.retries for r in rows if r is not None),
             pool_counters["hard_kills"], pool_counters["deaths"],
             len(service._quarantined), pool_counters["recycled"],
             degraded, tripped))
    if stop["flag"]:
        print("serve-batch: drained after signal; unfinished requests "
              "answered unknown(shutdown)")

    if args.results_json:
        import json
        text = "\n".join(json.dumps(r.as_dict(), sort_keys=True,
                                    default=str)
                         for r in rows if r is not None)
        if args.results_json == "-":
            print(text)
        else:
            with open(args.results_json, "w") as handle:
                handle.write(text + "\n")
    if args.trace:
        # One table for everything: ambient serve spans plus the merged
        # worker deltas (phase histograms, solver counters).
        _print_trace(tracer, aggregator.combined(metrics)
                     if aggregator is not None else metrics)
    return 0 if (answered == len(files) and incorrect == 0) else 1


# -- selfcheck ---------------------------------------------------------------


def _selfcheck_problems():
    """Built-in queries covering both phases and both final statuses."""
    from repro.logic import eq, ge
    from repro.strings import ProblemBuilder, str_len
    from repro.logic.terms import var

    sat_conv = ProblemBuilder()
    x = sat_conv.str_var("x")
    n = sat_conv.to_num(x)
    sat_conv.require_int(eq(var(n), 10))
    sat_conv.require_int(eq(str_len(x), 5))

    unsat_re = ProblemBuilder()
    y = unsat_re.str_var("y")
    unsat_re.member(y, "[0-9]{2}")
    unsat_re.require_int(ge(str_len(y), 3))

    sat_eq = ProblemBuilder()
    u = sat_eq.str_var("u")
    sat_eq.equal(("0", u), (u, "0"))
    sat_eq.require_int(eq(str_len(u), 3))

    return [("tonum-padded", sat_conv.problem, "sat"),
            ("regex-length", unsat_re.problem, "unsat"),
            ("periodic-eq", sat_eq.problem, "sat")]


def fuzz(argv=None):
    """Differential fuzzing campaign; non-zero exit on any disagreement."""
    from repro.diff import DifferentialDriver, GenConfig, run_campaign

    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description="differential + metamorphic fuzzing campaign: "
                    "seeded random problems through both TrauSolver "
                    "pipelines and the enumerative oracle")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (every problem derives "
                             "deterministically from seed and index)")
    parser.add_argument("--n", type=int, default=100,
                        help="number of problems to generate")
    parser.add_argument("--max-len", type=int, default=4,
                        help="witness length cap per string variable")
    parser.add_argument("--max-constraints", type=int, default=6,
                        help="constraints per problem (before length caps)")
    parser.add_argument("--alphabet", default="ab01", metavar="CHARS",
                        help="characters generated witnesses draw from")
    parser.add_argument("--lie-rate", type=float, default=0.3,
                        help="probability an emitter perturbs its "
                             "constraint (keeps UNSAT verdicts in play)")
    parser.add_argument("--timeout", type=float, default=2.0,
                        help="per-engine solve timeout in seconds")
    parser.add_argument("--save-failures", metavar="DIR", default=None,
                        help="write a shrunk .smt2 reproducer per "
                             "disagreement under DIR")
    parser.add_argument("--no-shrink", action="store_true",
                        help="save reproducers unshrunk (faster triage "
                             "of a badly broken build)")
    parser.add_argument("--no-metamorphic", action="store_true",
                        help="skip the satisfiability-preserving "
                             "transform checks")
    parser.add_argument("--backend", choices=("auto", "pure", "packed",
                                              "both"), default=None,
                        help="kernel backend for the PFA engines; 'both' "
                             "replaces the pipeline pair with a pinned "
                             "pfa-pure/pfa-packed pair so every problem "
                             "cross-checks the packed kernels against the "
                             "reference implementations")
    parser.add_argument("--trace", action="store_true",
                        help="print the span tree and metrics after the "
                             "summary (fuzz.* counters and solver phase "
                             "timings in one table)")
    parser.add_argument("--metrics-out", metavar="FILE",
                        help="write a Prometheus text-exposition snapshot "
                             "of the campaign's telemetry to FILE")
    _add_store_argument(parser)
    args = parser.parse_args(argv)

    if args.store:
        # The campaign's engines build their own configs; the process
        # default makes every one of them share the persistent store.
        from repro import store as _repro_store
        _repro_store.set_default_path(args.store)
    config = GenConfig(max_len=args.max_len,
                       alphabet_chars=args.alphabet,
                       max_constraints=args.max_constraints,
                       lie_rate=args.lie_rate)
    driver = DifferentialDriver(config=config, timeout=args.timeout,
                                metamorphic=not args.no_metamorphic,
                                backend=args.backend)
    observing = args.trace or args.metrics_out
    tracer = Tracer() if observing else None
    metrics = Metrics() if observing else None
    with scope(tracer, metrics):
        report = run_campaign(
            seed=args.seed, n=args.n, config=config, driver=driver,
            save_dir=args.save_failures, shrink=not args.no_shrink,
            progress=lambda line: print("! " + line, flush=True))
    aggregator = None
    if observing:
        # Same pipeline as the serving layer: fuzz.* counters (incl. the
        # disagreement rate) and solver-phase histograms merge into one
        # aggregator, so the trace table and the snapshot read alike.
        from repro.obs import TelemetryAggregator
        aggregator = TelemetryAggregator()
        aggregator.ingest_scope(tracer, metrics)
    for line in report.summary_lines():
        print(line)
    if args.metrics_out:
        from repro.obs import write_snapshot
        write_snapshot(args.metrics_out, aggregator)
    if args.trace:
        _print_trace(tracer, aggregator.combined())
    return 0 if report.ok else 1


def top(argv=None):
    """Live terminal view over a ``--metrics-out`` snapshot file."""
    from repro.obs.top import run_top

    parser = argparse.ArgumentParser(
        prog="repro top",
        description="live view over a --metrics-out snapshot: RPS, "
                    "queue depth, quarantine/recycle counts, and "
                    "p50/p95/p99 per solver phase")
    parser.add_argument("snapshot", metavar="FILE_OR_URL",
                        help="the file a running serve-batch rewrites "
                             "via --metrics-out, or the /metrics URL of "
                             "a running netserve (e.g. "
                             "http://127.0.0.1:8642/metrics)")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="seconds between scrapes (default 1)")
    parser.add_argument("--iterations", type=int, default=None, metavar="N",
                        help="frames to draw (default: until Ctrl-C)")
    parser.add_argument("--no-clear", action="store_true",
                        help="append frames instead of clearing the screen")
    args = parser.parse_args(argv)
    frames = run_top(args.snapshot, interval=args.interval,
                     iterations=args.iterations, clear=not args.no_clear)
    return 0 if frames else 1


def netserve(argv=None):
    """Run the asyncio network front door until SIGTERM drains it."""
    import asyncio
    import signal as _signal

    from repro.config import NetConfig, TenantQuota
    from repro.serve.net import NetServer

    parser = argparse.ArgumentParser(
        prog="repro netserve",
        description="serve solve/validate/fuzz/metrics over TCP: "
                    "HTTP/1.1 and length-prefixed JSON on one port, "
                    "multi-shard routing, admission control, deadline "
                    "propagation, graceful SIGTERM drain")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642,
                        help="TCP port (0 picks an ephemeral port, "
                             "printed at startup)")
    parser.add_argument("--shards", type=int, default=2,
                        help="SolverService shards behind the router")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes per shard")
    parser.add_argument("--max-open-requests", type=int, default=256,
                        help="admitted-but-unanswered bound; beyond it "
                             "the door sheds unknown(overloaded)")
    parser.add_argument("--default-deadline", type=float, default=10.0,
                        metavar="S",
                        help="deadline for requests that name none")
    parser.add_argument("--max-deadline", type=float, default=60.0,
                        metavar="S",
                        help="cap on client-supplied deadlines")
    parser.add_argument("--no-coalesce", action="store_true",
                        help="disable identical-fingerprint coalescing "
                             "and the front-door verdict cache")
    parser.add_argument("--breaker-threshold", type=int, default=3,
                        help="consecutive shard failures before its "
                             "circuit breaker opens")
    parser.add_argument("--breaker-cooldown", type=float, default=2.0,
                        metavar="S", help="open-breaker cooldown before "
                                          "a half-open probe")
    parser.add_argument("--restart-after", type=float, default=None,
                        metavar="S",
                        help="auto-restart a dead shard after S seconds "
                             "(default: stay down until admin restart)")
    parser.add_argument("--api-key", action="append", default=[],
                        metavar="NAME=KEY[:RPS[:BURST]]",
                        help="register a tenant with a token-bucket "
                             "quota (repeatable); with none, the door "
                             "is open (anonymous tenant)")
    parser.add_argument("--admin-key", default=None,
                        help="require X-Admin-Key on /admin endpoints")
    parser.add_argument("--grace", type=float, default=2.0,
                        help="seconds past a deadline before hard kill")
    parser.add_argument("--portfolio", action="store_true",
                        help="race incremental vs one-shot per request "
                             "with a cross-check")
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="periodically rewrite FILE as a Prometheus "
                             "snapshot (also served at /metrics)")
    parser.add_argument("--flight-dir", metavar="DIR", default=None,
                        help="per-request flight-recorder dumps")
    parser.add_argument("--slo", type=float, default=None, metavar="S",
                        help="latency SLO arming the flight recorder")
    _add_backend_argument(parser)
    _add_budget_arguments(parser)
    _add_store_argument(parser)
    parser.add_argument("--inject-fault", action="append", default=[],
                        metavar="SPEC",
                        help="arm a deterministic fault (repeatable); "
                             "net.* seams live in this server")
    args = parser.parse_args(argv)

    faults.arm_from_env()
    for spec in args.inject_fault:
        try:
            faults.arm(faults.parse_spec(spec))
        except ValueError as exc:
            raise SystemExit("repro netserve: %s" % exc)
    tenants = []
    for spec in args.api_key:
        try:
            tenants.append(TenantQuota.parse(spec))
        except ValueError as exc:
            raise SystemExit("repro netserve: %s" % exc)
    net_config = NetConfig(
        host=args.host, port=args.port, shards=args.shards,
        jobs_per_shard=args.jobs,
        max_open_requests=args.max_open_requests,
        default_deadline_s=args.default_deadline,
        max_deadline_s=args.max_deadline,
        coalesce=not args.no_coalesce,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        restart_after_s=args.restart_after,
        tenants=tuple(tenants), admin_key=args.admin_key)
    args.inject_fault = []     # already armed; keep them out of the config
    server = NetServer(
        solver_config=_build_config(args), net_config=net_config,
        grace=args.grace, store_path=getattr(args, "store", None),
        portfolio=args.portfolio, flight_dir=args.flight_dir,
        slo_seconds=args.slo, metrics_out=args.metrics_out)

    async def run():
        host, port = await server.start()
        print("netserve: listening on %s:%d (%d shard(s) x %d worker(s), "
              "%s tenants)" % (host, port, args.shards, args.jobs,
                               len(tenants) or "open-door"), flush=True)
        loop = asyncio.get_running_loop()
        for signum in (_signal.SIGTERM, _signal.SIGINT):
            try:
                loop.add_signal_handler(signum, server.initiate_shutdown)
            except (NotImplementedError, RuntimeError):
                pass
        await server.serve_forever()

    asyncio.run(run())
    print("netserve: drained; all shards down, exiting cleanly",
          flush=True)
    return 0


def loadgen(argv=None):
    """Chaos load harness against an in-process NetServer."""
    from repro.bench.loadgen import main as loadgen_main
    return loadgen_main(argv)


def selfcheck(argv=None):
    """Solve the built-in queries; non-zero exit on any wrong status."""
    from repro.errors import BUDGET_REASONS

    parser = argparse.ArgumentParser(
        prog="repro selfcheck",
        description="smoke-test the solver pipeline on built-in queries")
    parser.add_argument("--trace", action="store_true",
                        help="print one span tree + metrics per query")
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the memoization caches and "
                             "cross-round incremental solving")
    _add_backend_argument(parser)
    _add_budget_arguments(parser)
    _add_store_argument(parser)
    parser.add_argument("--inject-fault", action="append", default=[],
                        metavar="SPEC",
                        help="arm a deterministic fault (repeatable); "
                             "see `python -m repro --help`")
    parser.add_argument("--allow-unknown", action="store_true",
                        help="accept unknown answers whose stats name the "
                             "tripped budget (attributable unknowns); "
                             "unattributed unknowns still fail")
    args = parser.parse_args(argv)

    faults.arm_from_env()
    config = _build_config(args)
    failures = 0
    backends = set()
    for name, problem, expected in _selfcheck_problems():
        tracer = Tracer() if args.trace else None
        metrics = Metrics() if args.trace else None
        with scope(tracer, metrics):
            result = TrauSolver(config=config).solve(
                problem, timeout=args.timeout)
        stats = result.stats
        backends.add(stats.get("backend", "?"))
        reason = stats.get("budget_tripped") or stats.get("stopped_by")
        ok = result.status == expected
        note = ""
        if not ok and result.status == "unknown" and args.allow_unknown:
            ok = reason in BUDGET_REASONS
            note = "  [%s]" % (("stopped_by=%s" % reason) if ok
                               else "unattributed unknown")
        if stats.get("degraded_to"):
            note += "  [degraded_to=%s]" % stats["degraded_to"]
        failures += 0 if ok else 1
        print("%-14s %-7s expected=%-7s %s  (%.3fs)%s"
              % (name, result.status, expected, "ok" if ok else "FAIL",
                 stats.get("elapsed_s", 0.0), note))
        if args.trace:
            _print_trace(tracer, metrics)
    print("selfcheck: %s  [backend=%s]"
          % ("ok" if failures == 0 else "%d failure(s)" % failures,
             ",".join(sorted(backends))))
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
