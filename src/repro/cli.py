"""Command-line interface: solve SMT-LIB files with the PFA solver.

Usage::

    python -m repro FILE.smt2 [--timeout S] [--solver pfa|splitting|enum]
                              [--model] [--validate]
                              [--trace] [--trace-json FILE]
                              [--max-bb-nodes N] [--max-smt-iterations N]
                              [--max-automata-states N]
                              [--inject-fault SPEC]
    python -m repro selfcheck [--trace] [--allow-unknown] [budget flags]

Prints ``sat``/``unsat``/``unknown`` like an SMT solver; ``--model`` adds
a ``(model ...)`` block with the string/integer assignments.  ``--trace``
appends the per-phase span tree and metrics table (as ``;``-prefixed
SMT-LIB comments, so the output stays parseable); ``--trace-json FILE``
writes the same data as a JSON-lines event log.

Robustness knobs: the ``--max-*`` flags bound individual resource
dimensions of the unified :class:`~repro.config.Budget` (an exhausted
budget yields an UNKNOWN whose ``stopped_by`` names the tripped limit),
and ``--inject-fault SPEC`` (repeatable; also the ``REPRO_INJECT_FAULT``
environment variable) arms deterministic faults at internal seams to
exercise the degradation ladder — see :mod:`repro.faults`.

``selfcheck`` runs a handful of built-in queries through the full
pipeline and exits non-zero on any wrong status — a smoke test for CI.
With ``--allow-unknown`` an UNKNOWN answer passes as long as it is
*attributable* (its stats name the tripped budget), which is how the CI
chaos job asserts tiny budgets degrade gracefully instead of erroring.
"""

import argparse
import sys

from repro import faults
from repro.baselines import EnumerativeSolver, SplittingSolver
from repro.config import SolverConfig
from repro.core.solver import TrauSolver
from repro.obs import Metrics, Tracer, dump_jsonl, render_report, scope
from repro.smtlib import load_problem
from repro.strings import check_model

_SOLVERS = {
    "pfa": TrauSolver,
    "splitting": SplittingSolver,
    "enum": EnumerativeSolver,
}


def _escape(text):
    return text.replace('"', '""')


def format_model(problem, model):
    lines = ["(model"]
    for v in sorted(problem.string_vars(), key=lambda s: s.name):
        lines.append('  (define-fun %s () String "%s")'
                     % (v.name, _escape(model.get(v.name, ""))))
    for name in sorted(problem.int_vars()):
        value = model.get(name, 0)
        rendered = str(value) if value >= 0 else "(- %d)" % -value
        lines.append("  (define-fun %s () Int %s)" % (name, rendered))
    lines.append(")")
    return "\n".join(lines)


def _print_trace(tracer, metrics):
    """The span tree + metrics table as SMT-LIB comment lines."""
    report = render_report(tracer, metrics)
    for line in report.splitlines():
        print("; " + line if line else ";")


def _add_budget_arguments(parser):
    parser.add_argument("--max-bb-nodes", type=int, default=None, metavar="N",
                        help="bound the branch-and-bound search tree; "
                             "tripping it yields an attributable unknown")
    parser.add_argument("--max-smt-iterations", type=int, default=None,
                        metavar="N",
                        help="bound DPLL(T) iterations per solver call")
    parser.add_argument("--max-automata-states", type=int, default=None,
                        metavar="N",
                        help="bound the state count of automata products "
                             "and determinizations")


def _build_config(args):
    """A SolverConfig from the CLI's robustness flags."""
    kwargs = {}
    if getattr(args, "no_cache", False):
        kwargs.update(use_caches=False, use_incremental=False)
    if args.max_bb_nodes is not None:
        kwargs["bb_node_limit"] = args.max_bb_nodes
    if args.max_smt_iterations is not None:
        kwargs["smt_iteration_limit"] = args.max_smt_iterations
    if args.max_automata_states is not None:
        kwargs["automata_state_limit"] = args.max_automata_states
    if getattr(args, "inject_fault", None):
        try:
            specs = tuple(faults.parse_spec(s) for s in args.inject_fault)
        except ValueError as exc:
            raise SystemExit("repro: bad --inject-fault spec: %s" % exc)
        kwargs["fault_specs"] = specs
    return SolverConfig(**kwargs)


def main(argv=None):
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "selfcheck":
        return selfcheck(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description="PFA-based string constraint solver "
                    "(PLDI 2020 reproduction)")
    parser.add_argument("file", help="SMT-LIB 2 input file ('-' for stdin)")
    parser.add_argument("--timeout", type=float, default=10.0)
    parser.add_argument("--solver", choices=sorted(_SOLVERS), default="pfa")
    parser.add_argument("--model", action="store_true",
                        help="print a model for sat answers")
    parser.add_argument("--validate", action="store_true",
                        help="re-check sat models concretely and report")
    parser.add_argument("--trace", action="store_true",
                        help="print the span tree and metrics after the "
                             "answer (as ; comments)")
    parser.add_argument("--trace-json", metavar="FILE",
                        help="write the trace as JSON-lines to FILE "
                             "('-' for stdout)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the memoization caches and "
                             "cross-round incremental solving")
    _add_budget_arguments(parser)
    parser.add_argument("--inject-fault", action="append", default=[],
                        metavar="SPEC",
                        help="arm a deterministic fault at an internal seam "
                             "(repeatable); SPEC is point[:mode[:k=v,...]], "
                             "e.g. smt.session.solve:raise:after=1")
    args = parser.parse_args(argv)

    faults.arm_from_env()
    text = sys.stdin.read() if args.file == "-" else open(args.file).read()
    script = load_problem(text)
    if args.solver == "pfa":
        solver = TrauSolver(config=_build_config(args))
    else:
        solver = _SOLVERS[args.solver]()

    tracing = args.trace or args.trace_json
    tracer = Tracer() if tracing else None
    metrics = Metrics() if tracing else None
    with scope(tracer, metrics):
        result = solver.solve(script.problem, timeout=args.timeout)

    print(result.status)
    if result.status == "sat":
        if args.validate:
            ok = check_model(script.problem, result.model)
            print("; model %s" % ("validates" if ok else "FAILS validation"))
        if args.model:
            print(format_model(script.problem, result.model))
    if args.trace:
        _print_trace(tracer, metrics)
    if args.trace_json:
        if args.trace_json == "-":
            dump_jsonl(tracer, metrics, sys.stdout)
        else:
            with open(args.trace_json, "w") as handle:
                dump_jsonl(tracer, metrics, handle)
    if script.expected and result.status in ("sat", "unsat") \
            and result.status != script.expected:
        print("; WARNING: expected status was %s" % script.expected)
        return 1
    return 0


# -- selfcheck ---------------------------------------------------------------


def _selfcheck_problems():
    """Built-in queries covering both phases and both final statuses."""
    from repro.logic import eq, ge
    from repro.strings import ProblemBuilder, str_len
    from repro.logic.terms import var

    sat_conv = ProblemBuilder()
    x = sat_conv.str_var("x")
    n = sat_conv.to_num(x)
    sat_conv.require_int(eq(var(n), 10))
    sat_conv.require_int(eq(str_len(x), 5))

    unsat_re = ProblemBuilder()
    y = unsat_re.str_var("y")
    unsat_re.member(y, "[0-9]{2}")
    unsat_re.require_int(ge(str_len(y), 3))

    sat_eq = ProblemBuilder()
    u = sat_eq.str_var("u")
    sat_eq.equal(("0", u), (u, "0"))
    sat_eq.require_int(eq(str_len(u), 3))

    return [("tonum-padded", sat_conv.problem, "sat"),
            ("regex-length", unsat_re.problem, "unsat"),
            ("periodic-eq", sat_eq.problem, "sat")]


def selfcheck(argv=None):
    """Solve the built-in queries; non-zero exit on any wrong status."""
    from repro.errors import BUDGET_REASONS

    parser = argparse.ArgumentParser(
        prog="repro selfcheck",
        description="smoke-test the solver pipeline on built-in queries")
    parser.add_argument("--trace", action="store_true",
                        help="print one span tree + metrics per query")
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the memoization caches and "
                             "cross-round incremental solving")
    _add_budget_arguments(parser)
    parser.add_argument("--inject-fault", action="append", default=[],
                        metavar="SPEC",
                        help="arm a deterministic fault (repeatable); "
                             "see `python -m repro --help`")
    parser.add_argument("--allow-unknown", action="store_true",
                        help="accept unknown answers whose stats name the "
                             "tripped budget (attributable unknowns); "
                             "unattributed unknowns still fail")
    args = parser.parse_args(argv)

    faults.arm_from_env()
    config = _build_config(args)
    failures = 0
    for name, problem, expected in _selfcheck_problems():
        tracer = Tracer() if args.trace else None
        metrics = Metrics() if args.trace else None
        with scope(tracer, metrics):
            result = TrauSolver(config=config).solve(
                problem, timeout=args.timeout)
        stats = result.stats
        reason = stats.get("budget_tripped") or stats.get("stopped_by")
        ok = result.status == expected
        note = ""
        if not ok and result.status == "unknown" and args.allow_unknown:
            ok = reason in BUDGET_REASONS
            note = "  [%s]" % (("stopped_by=%s" % reason) if ok
                               else "unattributed unknown")
        if stats.get("degraded_to"):
            note += "  [degraded_to=%s]" % stats["degraded_to"]
        failures += 0 if ok else 1
        print("%-14s %-7s expected=%-7s %s  (%.3fs)%s"
              % (name, result.status, expected, "ok" if ok else "FAIL",
                 stats.get("elapsed_s", 0.0), note))
        if args.trace:
            _print_trace(tracer, metrics)
    print("selfcheck: %s" % ("ok" if failures == 0
                             else "%d failure(s)" % failures))
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
