"""A conflict-driven clause-learning SAT solver.

Standard architecture: two-watched-literal propagation, first-UIP conflict
analysis with clause minimization, VSIDS-style variable activities, phase
saving, and Luby-sequence restarts.  The solver is incremental in the weak
sense required by lazy SMT: clauses may be added between ``solve()`` calls.

Literals are non-zero integers (DIMACS convention): literal ``v`` asserts
variable ``v`` true, ``-v`` asserts it false.
"""

from heapq import heapify, heappop, heappush

from repro import faults as _faults
from repro.config import Deadline
from repro.obs import current_metrics

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


class _Clause:
    __slots__ = ("lits", "learnt", "activity")

    def __init__(self, lits, learnt=False):
        self.lits = lits
        self.learnt = learnt
        self.activity = 0.0


def _luby(i):
    """The i-th element (1-based) of the Luby restart sequence."""
    while True:
        k = 1
        while (1 << k) - 1 < i:
            k += 1
        if (1 << k) - 1 == i:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1


class SatSolver:
    """CDCL solver over integer literals."""

    def __init__(self):
        self._num_vars = 0
        self._clauses = []
        self._learnts = []
        self._watches = {}          # literal -> list of clauses watching it
        self._assign = {}           # var -> bool
        self._level = {}            # var -> decision level
        self._reason = {}           # var -> implying clause (None = decision)
        self._trail = []
        self._trail_lim = []
        self._queue_head = 0
        self._activity = {}
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._phase = {}
        self._heap = []
        self._ok = True
        self._restart_count = 0
        self._conflict_budget_check = 0

    # -- construction -------------------------------------------------------

    def ensure_var(self, var):
        while self._num_vars < var:
            self._num_vars += 1
            v = self._num_vars
            self._activity[v] = 0.0
            self._phase[v] = False
            heappush(self._heap, (0.0, v))
            self._watches.setdefault(v, [])
            self._watches.setdefault(-v, [])

    def add_clause(self, lits):
        """Add a clause; returns False if the solver became trivially unsat."""
        if not self._ok:
            return False
        self._backtrack(0)
        seen = set()
        out = []
        for lit in lits:
            self.ensure_var(abs(lit))
            if -lit in seen:
                return True     # tautology
            if lit in seen:
                continue
            value = self._value(lit)
            if value is True and self._level.get(abs(lit), 0) == 0:
                return True     # already satisfied at root
            if value is False and self._level.get(abs(lit), 0) == 0:
                continue        # falsified at root, drop literal
            seen.add(lit)
            out.append(lit)
        if not out:
            self._ok = False
            return False
        if len(out) == 1:
            if not self._enqueue(out[0], None):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True
        clause = _Clause(out)
        self._clauses.append(clause)
        self._watch(clause)
        return True

    def _watch(self, clause):
        self._watches[-clause.lits[0]].append(clause)
        self._watches[-clause.lits[1]].append(clause)

    # -- assignment ---------------------------------------------------------

    def _value(self, lit):
        v = self._assign.get(abs(lit))
        if v is None:
            return None
        return v if lit > 0 else not v

    def _enqueue(self, lit, reason):
        value = self._value(lit)
        if value is not None:
            return value
        var = abs(lit)
        self._assign[var] = lit > 0
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self):
        """Unit propagation; returns a conflicting clause or None.

        The inner loop hand-inlines ``_value`` and ``_enqueue`` — this is
        the solver's hottest path and the call overhead is measurable.
        """
        assign = self._assign
        watches = self._watches
        trail = self._trail
        while self._queue_head < len(trail):
            lit = trail[self._queue_head]
            self._queue_head += 1
            watchers = watches[lit]
            watches[lit] = []
            i = 0
            n = len(watchers)
            while i < n:
                clause = watchers[i]
                i += 1
                lits = clause.lits
                # Ensure the falsified literal is at position 1.
                if lits[0] == -lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                v = assign.get(first if first > 0 else -first)
                value = v if first > 0 or v is None else not v
                if value is True:
                    watches[lit].append(clause)
                    continue
                # Search for a new literal to watch.
                found = False
                for k in range(2, len(lits)):
                    lk = lits[k]
                    v = assign.get(lk if lk > 0 else -lk)
                    if v is None or (v if lk > 0 else not v):
                        lits[1], lits[k] = lits[k], lits[1]
                        watches[-lits[1]].append(clause)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                watches[lit].append(clause)
                if value is False:
                    # Conflict: restore remaining watchers.
                    watches[lit].extend(watchers[i:])
                    self._queue_head = len(trail)
                    return clause
                var = first if first > 0 else -first
                assign[var] = first > 0
                self._level[var] = len(self._trail_lim)
                self._reason[var] = clause
                trail.append(first)
        return None

    def _backtrack(self, level):
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            var = abs(lit)
            self._phase[var] = self._assign[var]
            del self._assign[var]
            del self._level[var]
            self._reason.pop(var, None)
            heappush(self._heap, (-self._activity[var], var))
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._queue_head = len(self._trail)

    # -- conflict analysis ----------------------------------------------------

    def _bump_var(self, var):
        self._activity[var] += self._var_inc
        if var not in self._assign:
            heappush(self._heap, (-self._activity[var], var))
        if self._activity[var] > 1e100:
            for v in self._activity:
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
            self._heap = [(-self._activity[v], v)
                          for _, v in self._heap if v not in self._assign]
            heapify(self._heap)

    def _analyze(self, conflict):
        """First-UIP learning; returns (learnt_lits, backtrack_level)."""
        current_level = len(self._trail_lim)
        seen = set()
        learnt = [None]     # slot 0 for the asserting literal
        counter = 0
        lit = None
        reason = conflict
        index = len(self._trail)
        while True:
            for q in reason.lits:
                if q == lit:
                    continue
                var = abs(q)
                if var in seen or self._level[var] == 0:
                    continue
                seen.add(var)
                self._bump_var(var)
                if self._level[var] == current_level:
                    counter += 1
                else:
                    learnt.append(q)
            # Pick the next trail literal to resolve on.
            while True:
                index -= 1
                lit = self._trail[index]
                if abs(lit) in seen:
                    break
            counter -= 1
            seen.discard(abs(lit))
            if counter == 0:
                break
            reason = self._reason[abs(lit)]
        learnt[0] = -lit

        # Clause minimization: drop literals implied by the rest.
        marked = set(abs(l) for l in learnt[1:])
        kept = [learnt[0]]
        for q in learnt[1:]:
            reason = self._reason.get(abs(q))
            if reason is None:
                kept.append(q)
                continue
            redundant = all(
                self._level[abs(r)] == 0 or abs(r) in marked or abs(r) in seen
                for r in reason.lits if abs(r) != abs(q))
            if not redundant:
                kept.append(q)
        learnt = kept

        if len(learnt) == 1:
            return learnt, 0
        # Backtrack level: highest level among non-asserting literals.
        max_i = 1
        for i in range(2, len(learnt)):
            if self._level[abs(learnt[i])] > self._level[abs(learnt[max_i])]:
                max_i = i
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, self._level[abs(learnt[1])]

    # -- decisions --------------------------------------------------------------

    def _decide(self):
        while self._heap:
            _, v = heappop(self._heap)
            if v not in self._assign:
                return v if self._phase[v] else -v
        # The heap is lazy; fall back to a scan to be safe.
        for v in range(1, self._num_vars + 1):
            if v not in self._assign:
                return v if self._phase[v] else -v
        return 0

    # -- main loop ----------------------------------------------------------------

    def simplify(self):
        """Propagate at the root level; False if the instance is unsat."""
        if not self._ok:
            return False
        self._backtrack(0)
        if self._propagate() is not None:
            self._ok = False
            return False
        return True

    def level0_literals(self):
        """Literals forced at decision level zero (call after simplify)."""
        if self._trail_lim:
            limit = self._trail_lim[0]
            return list(self._trail[:limit])
        return list(self._trail)

    def propagate_assumptions(self, assumptions):
        """Literals implied by unit propagation under *assumptions*.

        Places the assumptions like :meth:`solve` but performs no search,
        then undoes everything.  Returns the propagated trail (including
        level-zero facts and the assumptions themselves), or ``None`` when
        propagation alone refutes the assumptions (check :attr:`_ok` —
        still ``True`` — to tell assumption-UNSAT from global UNSAT).
        """
        if not self._ok:
            return None
        self._backtrack(0)
        if self._propagate() is not None:
            self._ok = False
            return None
        for lit in assumptions:
            self.ensure_var(abs(lit))
            value = self._value(lit)
            if value is False:
                self._backtrack(0)
                return None
            self._trail_lim.append(len(self._trail))
            if value is None:
                self._enqueue(lit, None)
                if self._propagate() is not None:
                    self._backtrack(0)
                    return None
        implied = list(self._trail)
        self._backtrack(0)
        return implied

    def solve(self, deadline=None, conflict_limit=None, assumptions=None):
        """Run the CDCL loop; returns SAT, UNSAT or UNKNOWN (budget).

        *assumptions* is a sequence of literals treated as pseudo-decisions
        at levels ``1..k`` (MiniSat style): a SAT answer satisfies all of
        them, an UNSAT answer means the clause set is inconsistent *with
        the assumptions* — the solver itself stays usable, keeping every
        learnt clause, which is what makes incremental SMT sessions cheap.
        Only a conflict at level zero marks the solver permanently unsat.
        """
        if _faults.ARMED:
            _faults.point("sat.solve")
        if deadline is None:
            deadline = Deadline.unbounded()
        assumptions = list(assumptions or ())
        if not self._ok:
            return UNSAT
        self._backtrack(0)
        for lit in assumptions:
            self.ensure_var(abs(lit))
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return UNSAT

        conflicts_total = 0
        decisions = 0
        restarts = 0
        luby_index = 1
        restart_limit = 32 * _luby(luby_index)
        conflicts_since_restart = 0

        # Counts stay in local integers during the search (this is the
        # hottest loop in the repo) and are reported once on the way out.
        try:
            while True:
                conflict = self._propagate()
                if conflict is not None:
                    conflicts_total += 1
                    conflicts_since_restart += 1
                    if conflict_limit is not None \
                            and conflicts_total > conflict_limit:
                        return UNKNOWN
                    if conflicts_total % 64 == 0 and deadline.expired():
                        return UNKNOWN
                    if not self._trail_lim:
                        self._ok = False
                        return UNSAT
                    learnt, back_level = self._analyze(conflict)
                    self._backtrack(back_level)
                    if len(learnt) == 1:
                        self._enqueue(learnt[0], None)
                    else:
                        clause = _Clause(learnt, learnt=True)
                        self._learnts.append(clause)
                        self._watch(clause)
                        self._enqueue(learnt[0], clause)
                    self._var_inc /= self._var_decay
                    if conflicts_since_restart >= restart_limit:
                        conflicts_since_restart = 0
                        restarts += 1
                        luby_index += 1
                        restart_limit = 32 * _luby(luby_index)
                        self._backtrack(0)
                    if len(self._learnts) > 2000 + 4 * len(self._clauses):
                        self._reduce_learnts()
                else:
                    if len(self._trail_lim) < len(assumptions):
                        # Place the next assumption as a pseudo-decision.
                        # Restarts backtrack to level 0, so placement
                        # simply re-runs; an already-true assumption gets
                        # an empty level, keeping "assumption i is the
                        # decision of level i+1" for conflict analysis.
                        lit = assumptions[len(self._trail_lim)]
                        value = self._value(lit)
                        if value is False:
                            self._backtrack(0)
                            return UNSAT
                        self._trail_lim.append(len(self._trail))
                        if value is None:
                            self._enqueue(lit, None)
                        continue
                    lit = self._decide()
                    if lit == 0:
                        return SAT
                    decisions += 1
                    self._trail_lim.append(len(self._trail))
                    self._enqueue(lit, None)
        finally:
            metrics = current_metrics()
            if metrics.enabled:
                metrics.add("sat.conflicts", conflicts_total)
                metrics.add("sat.decisions", decisions)
                metrics.add("sat.restarts", restarts)
                metrics.gauge("sat.learnts", len(self._learnts))

    def _reduce_learnts(self):
        """Throw away half of the learnt clauses (longest first)."""
        locked = set()
        for var, reason in self._reason.items():
            if reason is not None:
                locked.add(id(reason))
        self._learnts.sort(key=lambda c: len(c.lits))
        keep = self._learnts[: len(self._learnts) // 2]
        drop = self._learnts[len(self._learnts) // 2:]
        kept_drop = [c for c in drop if id(c) in locked or len(c.lits) <= 2]
        dropped = set(id(c) for c in drop if id(c) not in locked and len(c.lits) > 2)
        self._learnts = keep + kept_drop
        for lit in list(self._watches):
            self._watches[lit] = [c for c in self._watches[lit]
                                  if id(c) not in dropped]

    # -- results ------------------------------------------------------------------

    def model(self):
        """Variable -> bool map after a SAT answer (unassigned vars False)."""
        model = {}
        for v in range(1, self._num_vars + 1):
            model[v] = self._assign.get(v, False)
        return model
