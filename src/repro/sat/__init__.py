"""CDCL SAT solver used as the boolean engine of the SMT core."""

from repro.sat.solver import SatSolver, SAT, UNSAT, UNKNOWN

__all__ = ["SatSolver", "SAT", "UNSAT", "UNKNOWN"]
