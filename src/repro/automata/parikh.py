"""Linear-arithmetic characterization of Parikh images (Lemma 2.1).

Implements the Verma-Seidl-Schwentick encoding: a word's Parikh image is a
model of a flow problem on the automaton graph.  For every transition ``t``
a counter ``y_t`` gives how often ``t`` is taken; flow conservation links
the counters to the initial/final states, and per-state distance variables
``z_q`` force the support of ``y`` to be connected to the initial state
(ruling out "floating cycles").

The formula is linear and of size O(|Q| + |T| + sum of in-degrees), matching
the paper's claim that Parikh images of regular languages have linear-sized
linear-formula characterizations.
"""

from repro.automata.nfa import EPS
from repro.logic.formula import FALSE, conj, disj, eq, ge, le
from repro.logic.terms import const, var

_END = object()
"""Internal fresh symbol used to merge multiple final states."""


def parikh_formula(nfa, count_var, prefix, counter_bound=None):
    """Formula whose models project to the Parikh images of ``L(nfa)``.

    ``count_var`` maps each alphabet symbol to the name of its Parikh
    variable; ``prefix`` namespaces the auxiliary flow/distance variables
    so several Parikh formulas can coexist in one constraint.
    *counter_bound*, when given, caps every transition flow so the integer
    search space is bounded (see DESIGN.md Section 5).

    The automaton must be epsilon-free.  It is trimmed internally; an empty
    language yields ``FALSE``.
    """
    original_symbols = nfa.alphabet()
    base = nfa.without_epsilon().trim()
    if base.num_states == 0 or not base.finals:
        return FALSE

    transitions = list(base.transitions)
    finals = set(base.finals)
    if len(finals) > 1:
        # Merge finals through a hidden end-marker transition so the flow
        # problem has a single sink.  The marker count is fixed to one and
        # never exposed through `count_var`.
        sink = base.num_states
        num_states = base.num_states + 1
        for f in finals:
            transitions.append((f, _END, sink))
        final = sink
    else:
        num_states = base.num_states
        final = next(iter(finals))
    initial = base.initial

    def flow_var(t_index):
        return var("%s_y%d" % (prefix, t_index))

    def dist_var(state):
        return var("%s_z%d" % (prefix, state))

    incoming = [[] for _ in range(num_states)]
    outgoing = [[] for _ in range(num_states)]
    for i, (src, sym, dst) in enumerate(transitions):
        outgoing[src].append(i)
        incoming[dst].append(i)

    # In an acyclic automaton every nonnegative flow with unit demand
    # decomposes into source-sink paths, so the connectivity (distance)
    # constraints are redundant and omitted.
    acyclic = _is_acyclic(num_states, transitions)

    parts = []
    for i in range(len(transitions)):
        parts.append(ge(flow_var(i), 0))
        if counter_bound is not None and not acyclic:
            parts.append(le(flow_var(i), counter_bound))
        elif acyclic:
            parts.append(le(flow_var(i), 1))

    # Flow conservation: inflow - outflow = [q = final] - [q = initial].
    for q in range(num_states):
        demand = (1 if q == final else 0) - (1 if q == initial else 0)
        balance = const(0)
        for i in incoming[q]:
            balance = balance + flow_var(i)
        for i in outgoing[q]:
            balance = balance - flow_var(i)
        parts.append(eq(balance, demand))

    # Connectivity: z_initial = 1; every other state is either untouched
    # (distance 0, no adjacent flow) or entered by some used transition
    # from a state with a smaller positive distance.
    for q in range(num_states) if not acyclic else ():
        if q == initial:
            parts.append(eq(dist_var(initial), 1))
            continue
        untouched = [eq(dist_var(q), 0)]
        for i in incoming[q]:
            untouched.append(eq(flow_var(i), 0))
        for i in outgoing[q]:
            untouched.append(eq(flow_var(i), 0))
        options = [conj(*untouched)]
        for i in incoming[q]:
            src = transitions[i][0]
            options.append(conj(
                ge(flow_var(i), 1),
                ge(dist_var(src), 1),
                eq(dist_var(q), dist_var(src) + 1)))
        parts.append(disj(*options))

    # Tie the Parikh count variables to the flows.
    by_symbol = {}
    for i, (_, sym, _) in enumerate(transitions):
        by_symbol.setdefault(sym, []).append(i)
    for sym, indices in by_symbol.items():
        total = const(0)
        for i in indices:
            total = total + flow_var(i)
        if sym is _END:
            parts.append(eq(total, 1))
        else:
            parts.append(eq(var(count_var(sym)), total))

    # Symbols trimmed away with dead states can never occur.
    for sym in original_symbols:
        if sym is not EPS and sym not in by_symbol:
            parts.append(eq(var(count_var(sym)), 0))

    return conj(*parts)


def _is_acyclic(num_states, transitions):
    """Topological-order check over the transition graph."""
    adjacency = [[] for _ in range(num_states)]
    indegree = [0] * num_states
    for src, _, dst in transitions:
        adjacency[src].append(dst)
        indegree[dst] += 1
    queue = [q for q in range(num_states) if indegree[q] == 0]
    seen = 0
    while queue:
        q = queue.pop()
        seen += 1
        for t in adjacency[q]:
            indegree[t] -= 1
            if indegree[t] == 0:
                queue.append(t)
    return seen == num_states


def parikh_image_of_word(word):
    """Concrete Parikh image of a word: symbol -> count (for tests)."""
    image = {}
    for sym in word:
        image[sym] = image.get(sym, 0) + 1
    return image
