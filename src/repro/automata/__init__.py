"""Finite automata, regular expressions, and Parikh-image encodings.

Automata operate over numeric symbols (character codes from
:mod:`repro.alphabet`).  The Parikh module produces linear formulas whose
models are exactly the Parikh images of an automaton's language (Lemma 2.1
of the paper) — the workhorse behind the synchronization formulas of
Section 7.
"""

from repro.automata.nfa import NFA, EPS
from repro.automata.regex import Regex, parse_regex, regex_to_nfa
from repro.automata.parikh import parikh_formula

__all__ = ["NFA", "EPS", "Regex", "parse_regex", "regex_to_nfa",
           "parikh_formula"]
