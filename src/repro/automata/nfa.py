"""Nondeterministic finite automata over numeric symbols.

States are integers ``0..n-1``; symbols are arbitrary hashable values
(character codes for concrete automata, character-variable names inside
parametric automata).  ``EPS`` (``None``) marks epsilon transitions, which
Thompson constructions introduce and :meth:`NFA.without_epsilon` removes.

The class is immutable by convention: every operation returns a new NFA.
"""

from collections import deque

from repro import cache as _cache
from repro import faults as _faults
from repro import kernels as _kernels
from repro.errors import ResourceLimit, SolverError
from repro.obs import current_metrics

EPS = None
"""Epsilon transition label."""

# Bounded memoization of the pure automata constructions (repro.cache).
# Keys are structural fingerprints, so equal automata share results no
# matter where they were built; values are NFAs, which are immutable by
# convention, so sharing them between callers is safe.


def _stored_nfa_ok(value, _meta):
    """Validator for NFAs read back from the persistent store: rebuild
    through the checking constructor, which rejects out-of-range states
    and malformed transition triples."""
    try:
        NFA(value.num_states, value.transitions, value.initial, value.finals)
    except Exception:
        return False
    return True


# The expensive constructions (subset construction, product, Hopcroft)
# additionally persist across worker boots via repro.store; the cheap
# normalizations stay process-local.
_EPSFREE_CACHE = _cache.LRUCache("nfa.without_epsilon", 512)
_TRIM_CACHE = _cache.LRUCache("nfa.trim", 512)
_DETERMINIZE_CACHE = _cache.LRUCache("nfa.determinize", 256, persist=True,
                                     validator=_stored_nfa_ok)
_MINIMIZE_CACHE = _cache.LRUCache("nfa.minimize", 256, persist=True,
                                  validator=_stored_nfa_ok)
_INTERSECT_CACHE = _cache.LRUCache("nfa.intersect", 256, persist=True,
                                   validator=_stored_nfa_ok)


class NFA:
    """An NFA with one initial state and a set of final states."""

    __slots__ = ("num_states", "transitions", "initial", "finals", "_adj",
                 "_fp")

    def __init__(self, num_states, transitions, initial, finals):
        self.num_states = num_states
        self.transitions = tuple(transitions)
        self.initial = initial
        self.finals = frozenset(finals)
        self._fp = None
        adj = [[] for _ in range(num_states)]
        for src, sym, dst in self.transitions:
            if not (0 <= src < num_states and 0 <= dst < num_states):
                raise SolverError("transition out of range")
            adj[src].append((sym, dst))
        self._adj = adj

    def fingerprint(self):
        """Structural identity for memoization: two NFAs with the same
        fingerprint have identical states, transitions and finals (and
        hence the same language), so cached operation results transfer."""
        fp = self._fp
        if fp is None:
            fp = self._fp = (self.num_states, self.initial, self.finals,
                             self.transitions)
        return fp

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def empty():
        """The automaton accepting the empty language."""
        return NFA(1, [], 0, [])

    @staticmethod
    def epsilon():
        """The automaton accepting only the empty word."""
        return NFA(1, [], 0, [0])

    @staticmethod
    def from_word(codes):
        """Accepts exactly the given sequence of symbols."""
        transitions = [(i, sym, i + 1) for i, sym in enumerate(codes)]
        return NFA(len(codes) + 1, transitions, 0, [len(codes)])

    @staticmethod
    def from_symbols(symbols):
        """Accepts exactly the one-symbol words over *symbols*."""
        transitions = [(0, s, 1) for s in symbols]
        return NFA(2, transitions, 0, [1])

    # -- basic structure ---------------------------------------------------------

    def alphabet(self):
        """All non-epsilon symbols on transitions."""
        return {sym for _, sym, _ in self.transitions if sym is not EPS}

    def out_edges(self, state):
        return self._adj[state]

    def is_epsilon_free(self):
        return all(sym is not EPS for _, sym, _ in self.transitions)

    # -- language operations -------------------------------------------------------

    def union(self, other):
        offset_self, offset_other = 1, 1 + self.num_states
        transitions = [(0, EPS, offset_self + self.initial),
                       (0, EPS, offset_other + other.initial)]
        transitions += [(s + offset_self, a, t + offset_self)
                        for s, a, t in self.transitions]
        transitions += [(s + offset_other, a, t + offset_other)
                        for s, a, t in other.transitions]
        finals = [f + offset_self for f in self.finals]
        finals += [f + offset_other for f in other.finals]
        return NFA(1 + self.num_states + other.num_states,
                   transitions, 0, finals)

    def concat(self, other):
        offset = self.num_states
        transitions = list(self.transitions)
        transitions += [(s + offset, a, t + offset)
                        for s, a, t in other.transitions]
        transitions += [(f, EPS, offset + other.initial) for f in self.finals]
        return NFA(self.num_states + other.num_states, transitions,
                   self.initial, [f + offset for f in other.finals])

    def star(self):
        offset = 1
        transitions = [(0, EPS, offset + self.initial)]
        transitions += [(s + offset, a, t + offset)
                        for s, a, t in self.transitions]
        transitions += [(f + offset, EPS, 0) for f in self.finals]
        return NFA(1 + self.num_states, transitions, 0, [0])

    def plus(self):
        return self.concat(self.star())

    def optional(self):
        return self.union(NFA.epsilon())

    def repeat(self, low, high=None):
        """Between *low* and *high* copies (high=None means unbounded)."""
        result = NFA.epsilon()
        for _ in range(low):
            result = result.concat(self)
        if high is None:
            return result.concat(self.star())
        for _ in range(high - low):
            result = result.concat(self.optional())
        return result

    # -- epsilon removal / determinization ------------------------------------------

    def _eps_closure(self, states):
        closure = set(states)
        stack = list(states)
        while stack:
            s = stack.pop()
            for sym, t in self._adj[s]:
                if sym is EPS and t not in closure:
                    closure.add(t)
                    stack.append(t)
        return closure

    def without_epsilon(self):
        """Equivalent epsilon-free NFA (same state space)."""
        if self.is_epsilon_free():
            return self
        key = self.fingerprint()
        cached = _EPSFREE_CACHE.get(key)
        if cached is not _cache.MISSING:
            return cached
        closures = [self._eps_closure([s]) for s in range(self.num_states)]
        transitions = set()
        finals = set()
        for s in range(self.num_states):
            reach = closures[s]
            if reach & self.finals:
                finals.add(s)
            for r in reach:
                for sym, t in self._adj[r]:
                    if sym is not EPS:
                        transitions.add((s, sym, t))
        result = NFA(self.num_states, sorted(transitions, key=_trans_key),
                     self.initial, finals).trim()
        _EPSFREE_CACHE.put(key, result)
        return result

    def determinize(self, alphabet=None, deadline=None):
        """Subset construction; result is a complete DFA over *alphabet*.

        The construction is exponential in the worst case, so it checks
        *deadline* as it discovers states — both the wall clock and,
        when the deadline is a :class:`~repro.config.Budget`, the
        automata state-count guard — and raises an attributable
        :class:`~repro.errors.ResourceLimit` when a budget is gone.
        """
        if _faults.ARMED:
            _faults.point("automata.determinize")
        base = self.without_epsilon()
        if alphabet is None:
            alphabet = sorted(base.alphabet(), key=_sym_key)
        else:
            alphabet = sorted(set(alphabet), key=_sym_key)
        key = (base.fingerprint(), tuple(alphabet))
        cached = _DETERMINIZE_CACHE.get(key)
        if cached is not _cache.MISSING:
            return cached
        if _kernels.active() == _kernels.PACKED:
            # The bitset construction explores in the identical order,
            # so the result (and hence the cache entry) is structurally
            # the same NFA the pure loop below would build.
            from repro.kernels.automata import determinize_packed
            num_states, transitions, finals = determinize_packed(
                base, alphabet, deadline)
            metrics = current_metrics()
            if metrics.enabled:
                metrics.observe("nfa.determinize_states", num_states)
            result = NFA(num_states, transitions, 0, finals)
            _DETERMINIZE_CACHE.put(key, result)
            return result
        start = frozenset([base.initial])
        index = {start: 0}
        worklist = deque([start])
        transitions = []
        finals = set()
        state_limit = None if deadline is None \
            else deadline.automata_state_limit
        steps = 0
        while worklist:
            steps += 1
            if deadline is not None:
                # The state guard is exact (an inline compare per state,
                # the method call only on the way out); the wall-clock
                # check is amortized over 64 expansions.
                if state_limit is not None and len(index) > state_limit:
                    deadline.charge_states(len(index), op="determinization")
                if not steps & 63 and deadline.expired():
                    raise ResourceLimit("determinization hit the deadline",
                                        reason="deadline")
            current = worklist.popleft()
            ci = index[current]
            if current & base.finals:
                finals.add(ci)
            for sym in alphabet:
                nxt = frozenset(t for s in current
                                for a, t in base._adj[s] if a == sym)
                if nxt not in index:
                    index[nxt] = len(index)
                    worklist.append(nxt)
                transitions.append((ci, sym, index[nxt]))
        metrics = current_metrics()
        if metrics.enabled:
            metrics.observe("nfa.determinize_states", len(index))
        result = NFA(len(index), transitions, 0, finals)
        _DETERMINIZE_CACHE.put(key, result)
        return result

    def complement(self, alphabet):
        """Automaton for the complement language over *alphabet*."""
        dfa = self.determinize(alphabet)
        finals = set(range(dfa.num_states)) - set(dfa.finals)
        return NFA(dfa.num_states, dfa.transitions, dfa.initial, finals)

    def intersect(self, other, deadline=None):
        """Product automaton for the language intersection.

        Product construction can blow up quadratically, so it checks
        *deadline* per explored pair — wall clock plus the
        :class:`~repro.config.Budget` state-count guard — and raises an
        attributable :class:`~repro.errors.ResourceLimit` when a budget
        is gone.
        """
        if _faults.ARMED:
            _faults.point("automata.intersect")
        a = self.without_epsilon()
        b = other.without_epsilon()
        key = (a.fingerprint(), b.fingerprint())
        cached = _INTERSECT_CACHE.get(key)
        if cached is not _cache.MISSING:
            return cached
        if _kernels.active() == _kernels.PACKED:
            from repro.kernels.automata import intersect_packed
            num_states, transitions, finals = intersect_packed(a, b, deadline)
            metrics = current_metrics()
            if metrics.enabled:
                metrics.observe("nfa.product_states", num_states)
            if not num_states:
                result = NFA.empty()
            else:
                result = NFA(num_states, transitions, 0, finals).trim()
            _INTERSECT_CACHE.put(key, result)
            return result
        index = {}
        transitions = []
        finals = []

        def state_of(p, q):
            if (p, q) not in index:
                index[(p, q)] = len(index)
            return index[(p, q)]

        start = state_of(a.initial, b.initial)
        worklist = deque([(a.initial, b.initial)])
        visited = {(a.initial, b.initial)}
        b_by_sym = [dict() for _ in range(b.num_states)]
        for s in range(b.num_states):
            for sym, t in b._adj[s]:
                b_by_sym[s].setdefault(sym, []).append(t)
        state_limit = None if deadline is None \
            else deadline.automata_state_limit
        steps = 0
        while worklist:
            steps += 1
            if deadline is not None:
                if state_limit is not None and len(index) > state_limit:
                    deadline.charge_states(len(index), op="product")
                if not steps & 63 and deadline.expired():
                    raise ResourceLimit(
                        "product construction hit the deadline",
                        reason="deadline")
            p, q = worklist.popleft()
            if p in a.finals and q in b.finals:
                finals.append(index[(p, q)])
            for sym, pt in a._adj[p]:
                for qt in b_by_sym[q].get(sym, ()):
                    if (pt, qt) not in visited:
                        visited.add((pt, qt))
                        state_of(pt, qt)
                        worklist.append((pt, qt))
                    transitions.append((index[(p, q)], sym, index[(pt, qt)]))
        metrics = current_metrics()
        if metrics.enabled:
            metrics.observe("nfa.product_states", len(index))
        if not index:
            result = NFA.empty()
        else:
            result = NFA(len(index), transitions, start, finals).trim()
        _INTERSECT_CACHE.put(key, result)
        return result

    # -- structural cleanup -----------------------------------------------------------

    def trim(self):
        """Restrict to states both reachable and co-reachable."""
        key = self.fingerprint()
        cached = _TRIM_CACHE.get(key)
        if cached is not _cache.MISSING:
            return cached
        result = self._trim()
        _TRIM_CACHE.put(key, result)
        return result

    def _trim(self):
        forward = self._reach_from({self.initial}, self._adj)
        rev = [[] for _ in range(self.num_states)]
        for s, a, t in self.transitions:
            rev[t].append((a, s))
        backward = self._reach_from(set(self.finals), rev)
        keep = forward & backward
        if self.initial not in keep:
            return NFA.empty()
        index = {}
        for s in sorted(keep):
            index[s] = len(index)
        transitions = [(index[s], a, index[t]) for s, a, t in self.transitions
                       if s in keep and t in keep]
        finals = [index[f] for f in self.finals if f in keep]
        return NFA(len(index), transitions, index[self.initial], finals)

    @staticmethod
    def _reach_from(seeds, adjacency):
        seen = set(seeds)
        stack = list(seeds)
        while stack:
            s = stack.pop()
            for _, t in adjacency[s]:
                if t not in seen:
                    seen.add(t)
                    stack.append(t)
        return seen

    def minimize(self, alphabet=None, deadline=None):
        """Hopcroft minimization of the determinized automaton."""
        key = (self.fingerprint(),
               None if alphabet is None
               else tuple(sorted(set(alphabet), key=_sym_key)))
        cached = _MINIMIZE_CACHE.get(key)
        if cached is not _cache.MISSING:
            return cached
        result = self._minimize(alphabet, deadline)
        _MINIMIZE_CACHE.put(key, result)
        return result

    def _minimize(self, alphabet, deadline):
        dfa = self.determinize(alphabet, deadline=deadline)
        dfa = dfa.trim()
        if dfa.num_states == 0:
            return NFA.empty()
        symbols = sorted(dfa.alphabet(), key=_sym_key)
        delta = {}
        preimage = {}
        for s, a, t in dfa.transitions:
            delta[(s, a)] = t
            preimage.setdefault((t, a), set()).add(s)
        finals = set(dfa.finals)
        non_finals = set(range(dfa.num_states)) - finals
        partition = [blk for blk in (finals, non_finals) if blk]
        worklist = [blk for blk in partition]
        steps = 0
        while worklist:
            steps += 1
            if deadline is not None and not steps & 63 \
                    and deadline.expired():
                raise ResourceLimit("minimization hit the deadline",
                                    reason="deadline")
            splitter = worklist.pop()
            for a in symbols:
                x = set()
                for t in splitter:
                    x |= preimage.get((t, a), set())
                new_partition = []
                for block in partition:
                    inter = block & x
                    diff = block - x
                    if inter and diff:
                        new_partition.extend([inter, diff])
                        if block in worklist:
                            worklist.remove(block)
                            worklist.extend([inter, diff])
                        else:
                            worklist.append(min(inter, diff, key=len))
                    else:
                        new_partition.append(block)
                partition = new_partition
        block_of = {}
        for i, block in enumerate(partition):
            for s in block:
                block_of[s] = i
        transitions = sorted({(block_of[s], a, block_of[t])
                              for (s, a), t in delta.items()}, key=_trans_key)
        finals = sorted({block_of[f] for f in dfa.finals})
        return NFA(len(partition), transitions,
                   block_of[dfa.initial], finals).trim()

    # -- queries ------------------------------------------------------------------------

    def is_empty(self):
        trimmed = self.trim()
        return trimmed.num_states == 0 or not trimmed.finals

    def accepts(self, word):
        """Membership test for a sequence of symbols."""
        current = self._eps_closure([self.initial])
        for sym in word:
            nxt = set()
            for s in current:
                for a, t in self._adj[s]:
                    if a == sym:
                        nxt.add(t)
            if not nxt:
                return False
            current = self._eps_closure(nxt)
        return bool(current & self.finals)

    def enumerate_words(self, max_length, max_words=None):
        """All accepted words of length <= max_length.

        With *max_words* the breadth-first frontier is bounded: as soon
        as more than that many distinct words (or four times as many
        search paths) are in play the enumeration aborts and returns
        ``None`` — a two-state NFA over a wide symbol class accepts
        exponentially many words, and callers that only want "the
        language, if it is small" (the SMT-LIB printer) must not pay
        exponential time to discover that it is not.
        """
        base = self.without_epsilon()
        results = []
        frontier = [(base.initial, ())]
        for _ in range(max_length + 1):
            next_frontier = []
            for state, word in frontier:
                if state in base.finals:
                    results.append(word)
                for sym, t in base._adj[state]:
                    next_frontier.append((t, word + (sym,)))
            if max_words is not None and (len(results) > max_words
                                          or len(next_frontier)
                                          > 4 * max_words):
                return None
            frontier = next_frontier
        # States can repeat, so deduplicate words.
        return sorted(set(results), key=lambda w: (len(w), w))

    def shortest_word(self):
        """A shortest accepted word, or None if the language is empty."""
        base = self.without_epsilon()
        if base.num_states == 0:
            return None
        visited = {base.initial: ()}
        queue = deque([base.initial])
        if base.initial in base.finals:
            return ()
        while queue:
            s = queue.popleft()
            for sym, t in base._adj[s]:
                if t not in visited:
                    visited[t] = visited[s] + (sym,)
                    if t in base.finals:
                        return visited[t]
                    queue.append(t)
        return None

    def single_final(self):
        """Equivalent NFA with exactly one final state (may add epsilons)."""
        if len(self.finals) == 1:
            return self
        sink = self.num_states
        transitions = list(self.transitions)
        transitions += [(f, EPS, sink) for f in self.finals]
        return NFA(self.num_states + 1, transitions, self.initial, [sink])

    def __repr__(self):
        return "NFA(states=%d, transitions=%d, finals=%d)" % (
            self.num_states, len(self.transitions), len(self.finals))


def _sym_key(sym):
    return (0, sym, "") if isinstance(sym, int) else (1, 0, str(sym))


def _trans_key(transition):
    src, sym, dst = transition
    return (src, _sym_key(sym), dst)
