"""Regular expressions: AST, a compact concrete syntax, and NFA conversion.

The syntax is the usual POSIX-flavoured subset:

* literal characters; ``\\`` escapes metacharacters,
* character classes ``[a-z0-9_]`` with negation ``[^...]``,
* ``.`` any character of the alphabet,
* grouping ``( )``, alternation ``|``,
* postfix ``*``, ``+``, ``?``, ``{m}``, ``{m,}``, ``{m,n}``.

Expressions operate over an :class:`~repro.alphabet.Alphabet`, so symbol
sets are sets of numeric character codes.
"""

from repro import cache as _cache
from repro.alphabet import DEFAULT_ALPHABET
from repro.automata.nfa import NFA
from repro.errors import ParseError


class Regex:
    """Base class of regex AST nodes."""

    __slots__ = ()

    def to_nfa(self):
        raise NotImplementedError

    def matches(self, codes):
        return self.to_nfa().accepts(codes)


class REmpty(Regex):
    __slots__ = ()

    def to_nfa(self):
        return NFA.empty()

    def __repr__(self):
        return "(empty)"


class REps(Regex):
    __slots__ = ()

    def to_nfa(self):
        return NFA.epsilon()

    def __repr__(self):
        return "(eps)"


class RSym(Regex):
    """A set of admissible character codes at one position."""

    __slots__ = ("codes",)

    def __init__(self, codes):
        self.codes = frozenset(codes)

    def to_nfa(self):
        return NFA.from_symbols(sorted(self.codes))

    def __repr__(self):
        return "[%s]" % ",".join(map(str, sorted(self.codes)))


class RConcat(Regex):
    __slots__ = ("parts",)

    def __init__(self, parts):
        self.parts = tuple(parts)

    def to_nfa(self):
        result = NFA.epsilon()
        for part in self.parts:
            result = result.concat(part.to_nfa())
        return result

    def __repr__(self):
        return "".join(map(repr, self.parts))


class RUnion(Regex):
    __slots__ = ("parts",)

    def __init__(self, parts):
        self.parts = tuple(parts)

    def to_nfa(self):
        result = self.parts[0].to_nfa()
        for part in self.parts[1:]:
            result = result.union(part.to_nfa())
        return result

    def __repr__(self):
        return "(%s)" % "|".join(map(repr, self.parts))


class RRepeat(Regex):
    """Between *low* and *high* repetitions; ``high=None`` is unbounded."""

    __slots__ = ("inner", "low", "high")

    def __init__(self, inner, low, high):
        self.inner = inner
        self.low = low
        self.high = high

    def to_nfa(self):
        return self.inner.to_nfa().repeat(self.low, self.high)

    def __repr__(self):
        if (self.low, self.high) == (0, None):
            return "%r*" % self.inner
        if (self.low, self.high) == (1, None):
            return "%r+" % self.inner
        if (self.low, self.high) == (0, 1):
            return "%r?" % self.inner
        return "%r{%s,%s}" % (self.inner, self.low,
                              "" if self.high is None else self.high)


_META = set("()[]|*+?{}.\\")


class _RegexParser:
    def __init__(self, text, alphabet):
        self.text = text
        self.pos = 0
        self.alphabet = alphabet

    def peek(self):
        return self.text[self.pos] if self.pos < len(self.text) else None

    def take(self):
        c = self.peek()
        if c is None:
            raise ParseError("unexpected end of regex", self.pos)
        self.pos += 1
        return c

    def parse(self):
        node = self.alternation()
        if self.pos != len(self.text):
            raise ParseError("trailing characters in regex", self.pos)
        return node

    def alternation(self):
        parts = [self.concatenation()]
        while self.peek() == "|":
            self.take()
            parts.append(self.concatenation())
        return parts[0] if len(parts) == 1 else RUnion(parts)

    def concatenation(self):
        parts = []
        while self.peek() is not None and self.peek() not in ")|":
            parts.append(self.postfix())
        if not parts:
            return REps()
        return parts[0] if len(parts) == 1 else RConcat(parts)

    def postfix(self):
        node = self.atom()
        while True:
            c = self.peek()
            if c == "*":
                self.take()
                node = RRepeat(node, 0, None)
            elif c == "+":
                self.take()
                node = RRepeat(node, 1, None)
            elif c == "?":
                self.take()
                node = RRepeat(node, 0, 1)
            elif c == "{":
                self.take()
                node = self.braces(node)
            else:
                return node

    def braces(self, node):
        low = self.number()
        high = low
        if self.peek() == ",":
            self.take()
            high = None if self.peek() == "}" else self.number()
        if self.take() != "}":
            raise ParseError("expected '}' in repetition", self.pos)
        if high is not None and high < low:
            raise ParseError("bad repetition bounds", self.pos)
        return RRepeat(node, low, high)

    def number(self):
        digits = ""
        while self.peek() is not None and self.peek().isdigit():
            digits += self.take()
        if not digits:
            raise ParseError("expected a number", self.pos)
        return int(digits)

    def atom(self):
        c = self.take()
        if c == "(":
            node = self.alternation()
            if self.take() != ")":
                raise ParseError("expected ')'", self.pos)
            return node
        if c == "[":
            return self.char_class()
        if c == ".":
            return RSym(self.alphabet.codes())
        if c == "\\":
            return RSym([self.alphabet.code(self.take())])
        if c in _META:
            raise ParseError("unexpected metacharacter %r" % c, self.pos - 1)
        return RSym([self.alphabet.code(c)])

    def char_class(self):
        negated = False
        if self.peek() == "^":
            self.take()
            negated = True
        codes = set()
        first = True
        while True:
            c = self.peek()
            if c is None:
                raise ParseError("unterminated character class", self.pos)
            if c == "]" and not first:
                self.take()
                break
            first = False
            c = self.take()
            if c == "\\":
                c = self.take()
            low = self.alphabet.code(c)
            if self.peek() == "-" and self.pos + 1 < len(self.text) \
                    and self.text[self.pos + 1] != "]":
                self.take()
                hi_char = self.take()
                if hi_char == "\\":
                    hi_char = self.take()
                # Ranges follow the natural order of the underlying
                # characters, not the numeric codes, so expand via chars.
                lo_ord, hi_ord = ord(self.alphabet.char(low)), ord(hi_char)
                if hi_ord < lo_ord:
                    raise ParseError("bad character range", self.pos)
                for o in range(lo_ord, hi_ord + 1):
                    codes.add(self.alphabet.code(chr(o)))
            else:
                codes.add(low)
        if negated:
            codes = set(self.alphabet.codes()) - codes
        return RSym(codes)


def parse_regex(text, alphabet=DEFAULT_ALPHABET):
    """Parse the compact regex syntax into a :class:`Regex`."""
    return _RegexParser(text, alphabet).parse()


def _stored_compile_ok(value, _meta):
    from repro.automata.nfa import _stored_nfa_ok
    return _stored_nfa_ok(value, _meta)


_COMPILE_CACHE = _cache.LRUCache("regex.compile", 512, persist=True,
                                 validator=_stored_compile_ok)


def regex_to_nfa(text_or_regex, alphabet=DEFAULT_ALPHABET):
    """Parse (if needed) and convert to a trimmed epsilon-free NFA.

    Compilation of a pattern string is memoized per alphabet: benchmark
    suites and repeated solver calls compile the same membership
    patterns over and over, and the resulting NFA is immutable.
    """
    if not isinstance(text_or_regex, str):
        return text_or_regex.to_nfa().without_epsilon().trim()
    key = (text_or_regex, alphabet.signature())
    cached = _COMPILE_CACHE.get(key)
    if cached is not _cache.MISSING:
        return cached
    regex = parse_regex(text_or_regex, alphabet)
    result = regex.to_nfa().without_epsilon().trim()
    _COMPILE_CACHE.put(key, result)
    return result
