"""Input-validation path constraints using real-parser conversion semantics.

Four families modeled on the string-to-number handling of real validation
code, the motivating workloads for the NumSemantics variants:

* ``currency``  — ``"$1,234"``-style amounts: strip the thousands
  separators with ``replaceAll``, parse the rest with ``strtol``
  semantics, compare against a limit.
* ``isodate``   — ``YYYY-MM-DD``: structural split plus range checks on
  the month/day fields through the SMT-LIB conversion.
* ``ipv4``      — dotted-quad addresses: four octet fields, each
  converted and bounded by 255 (the classic off-by-parsing workload).
* ``checkid``   — checksummed identifiers: a namespace letter (via
  ``to_code``) plus a ``pg_int``-parsed payload whose value must agree
  with the namespace modulo a small base.

Every instance carries a certified expected status: SAT instances are
built around a concrete accepted input, UNSAT ones add a bound the
conversion semantics make impossible.
"""

from repro.logic.formula import conj, eq, ge, le
from repro.logic.terms import var as int_var
from repro.strings.ast import str_len
from repro.strings.ops import ProblemBuilder
from repro.symbex.common import Instance, rng_for


def currency_problem(digits, limit, expect_within=True):
    """An amount string ``$d,ddd...`` whose numeric value faces *limit*.

    The validator strips "$" structurally and the "," separators with
    replaceAll, then parses with strtol semantics.  ``expect_within``
    asks for an amount <= limit; with enough digits forced, flipping it
    to a lower bound the digit count cannot reach makes the path UNSAT.
    """
    b = ProblemBuilder()
    x = b.str_var("amount")
    body = b.fresh_str("_body")
    b.equal((x,), ("$", body))
    b.member(body, "[0-9,]+")
    # Amounts this size hold at most two thousands separators; the lower
    # occurrence cap keeps the branch count (and solve time) down.
    stripped, _ = b.replace_all(body, ",", "", max_occurrences=2,
                                result="stripped")
    b.member(stripped, "[0-9]+")
    b.require_int(eq(str_len(stripped), digits))
    n = b.to_num_sem(stripped, "strtol", result="value")
    if expect_within:
        b.require_int(conj(ge(int_var(n), 0), le(int_var(n), limit)))
    else:
        # More than 10^digits - 1: no digit string of that width reaches it.
        b.require_int(ge(int_var(n), 10 ** digits))
    return b.problem


def isodate_problem(month_ok=True):
    """A ``YYYY-MM-DD`` date whose month field is range-checked."""
    b = ProblemBuilder()
    x = b.str_var("date")
    year = b.fresh_str("_year")
    month = b.fresh_str("_month")
    day = b.fresh_str("_day")
    b.equal((x,), (year, "-", month, "-", day))
    for part, width in ((year, 4), (month, 2), (day, 2)):
        b.member(part, "[0-9]+")
        b.require_int(eq(str_len(part), width))
    # The validator locates the first separator before splitting.
    i = b.index_of(x, "-")[0]
    b.require_int(eq(int_var(i), 4))
    m = b.to_num(month)
    d = b.to_num(day)
    b.require_int(conj(ge(int_var(d), 1), le(int_var(d), 31)))
    if month_ok:
        b.require_int(conj(ge(int_var(m), 1), le(int_var(m), 12)))
    else:
        # Two digits cap the month at 99; demanding more is impossible.
        b.require_int(ge(int_var(m), 100))
    return b.problem


def ipv4_problem(last_octet_max=255):
    """A dotted-quad address with every octet converted and bounded."""
    b = ProblemBuilder()
    x = b.str_var("addr")
    octets = [b.fresh_str("_oct%d" % i) for i in range(4)]
    b.equal((x,), (octets[0], ".", octets[1], ".", octets[2], ".",
                   octets[3]))
    values = []
    for octet in octets:
        b.member(octet, "[0-9]+")
        b.require_int(conj(ge(str_len(octet), 1), le(str_len(octet), 3)))
        n = b.to_num(octet)
        values.append(n)
        b.require_int(conj(ge(int_var(n), 0), le(int_var(n), 255)))
    # The scenario's extra demand on the last octet; pushing it past
    # 255 contradicts the shared bound above and the instance is UNSAT.
    b.require_int(ge(int_var(values[3]), last_octet_max))
    return b.problem


def checkid_problem(payload_digits, residue_ok=True):
    """A checksummed ID: namespace letter + pg_int-parsed payload.

    The namespace letter's code picks a residue class; the payload value
    must land in it modulo 7 (encoded as value = 7q + r with the fresh
    quotient bounded to keep the instance finite).
    """
    b = ProblemBuilder()
    x = b.str_var("ident")
    letter, _ = b.at_total(x, 0, result="nsletter")
    payload = b.fresh_str("_payload")
    b.equal((x,), (letter, payload))
    b.member(payload, "[0-9]+")
    b.require_int(eq(str_len(payload), payload_digits))
    code = b.to_code(letter)[0]
    b.require_int(conj(ge(int_var(code), 65), le(int_var(code), 90)))
    value = b.to_num_sem(payload, "pg_int", result="payload_value")
    quotient = b.fresh_int("_q")
    residue = int_var(code) - 65 if residue_ok else int_var(code) - 64
    b.require_int(conj(
        ge(int_var(quotient), 0),
        eq(int_var(value), int_var(quotient) * 7 + residue)))
    if not residue_ok:
        # Residue forced to 26 while the namespace codes cap it at 25:
        # together with code = 90 the two value equations clash mod 7.
        b.require_int(eq(int_var(code), 90))
        b.require_int(eq(int_var(value), int_var(quotient) * 7 + 25))
    return b.problem


def generate(count=10, seed=0):
    """The validation suite: *count* instances across the four families."""
    rng = rng_for(seed, "validation")
    out = []
    for i in range(count):
        digits = 2 + (i % 3)
        out.append(Instance(
            "validation/currency-sat-%02d" % i,
            currency_problem(digits, limit=10 ** digits), "sat"))
        out.append(Instance(
            "validation/currency-unsat-%02d" % i,
            currency_problem(digits, limit=0, expect_within=False),
            "unsat"))
        out.append(Instance(
            "validation/isodate-sat-%02d" % i, isodate_problem(), "sat"))
        out.append(Instance(
            "validation/isodate-unsat-%02d" % i,
            isodate_problem(month_ok=False), "unsat"))
        out.append(Instance(
            "validation/ipv4-sat-%02d" % i,
            ipv4_problem(last_octet_max=rng.choice([0, 100, 255])), "sat"))
        out.append(Instance(
            "validation/checkid-sat-%02d" % i,
            checkid_problem(2 + (i % 2)), "sat"))
        out.append(Instance(
            "validation/checkid-unsat-%02d" % i,
            checkid_problem(2, residue_ok=False), "unsat"))
    return out[:count * 4]
