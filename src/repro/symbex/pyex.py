"""PyEx-style random path constraints over basic string operations.

The paper's largest Table 1 suite comes from running PyEx over Python
packages; the constraints mix concatenations, slicing (charAt/substr),
membership and length arithmetic — without string-number conversion.

Instances are generated *witness-first*: a concrete assignment is drawn,
the constraints are synthesized to hold of it (so the instance is SAT by
construction), and UNSAT variants inject a single contradiction.  This
gives every instance a certified ground-truth label, replacing the paper's
cross-solver validation for generated suites.
"""

from repro.logic.formula import eq, ge, le
from repro.strings.ast import str_len
from repro.strings.ops import ProblemBuilder
from repro.symbex.common import Instance, rng_for

_WORDS = ["get", "key", "val", "http", "user", "id", "x", "item", "42",
          "tmp", "a", "of"]
_CLASSES = ["[a-z]+", "[a-z0-9]+", "[a-z_]+", "[0-9a-f]+"]


def _random_word(rng, min_len=1, max_len=6):
    return "".join(rng.choice("abcdefghij") for _ in range(
        rng.randint(min_len, max_len)))


def concat_chain_problem(rng, parts, sat=True):
    """s = x1 . lit . x2 ... with per-part lengths and memberships."""
    b = ProblemBuilder()
    s = b.str_var("s")
    term = []
    witness = ""
    for i in range(parts):
        if rng.random() < 0.4:
            lit = rng.choice(_WORDS)
            term.append(lit)
            witness += lit
        else:
            v = b.str_var("p%d" % i)
            value = _random_word(rng)
            witness += value
            term.append(v)
            b.require_int(eq(str_len(v), len(value)))
            if rng.random() < 0.5:
                b.member(v, "[a-j]+")
    b.equal((s,), tuple(term))
    b.require_int(eq(str_len(s), len(witness)))
    if not sat:
        b.require_int(ge(str_len(s), len(witness) + 1))
    return b.problem


def slicing_problem(rng, sat=True):
    """charAt/substr path: fix a character deep inside a bounded string."""
    b = ProblemBuilder()
    s = b.str_var("s")
    length = rng.randint(3, 9)
    index = rng.randint(0, length - 1)
    b.member(s, "[a-j]+")
    b.require_int(eq(str_len(s), length))
    c = b.char_at(s, index)
    b.equal((c,), (rng.choice("abcdefghij"),))
    piece_len = rng.randint(1, max(1, length - index))
    piece = b.substr(s, index, piece_len)
    b.require_int(eq(str_len(piece), piece_len))
    if not sat:
        b.require_int(le(str_len(s), index))   # index out of range
    return b.problem


def affix_problem(rng, sat=True):
    """prefixof/suffixof/contains combination on a bounded string."""
    b = ProblemBuilder()
    s = b.str_var("s")
    prefix = rng.choice(_WORDS)
    suffix = rng.choice(_WORDS)
    middle = rng.choice(_WORDS)
    total = len(prefix) + len(middle) + len(suffix)
    b.prefix_of((prefix,), s)
    b.suffix_of((suffix,), s)
    b.contains(s, (middle,))
    if sat:
        b.require_int(ge(str_len(s), total))
        b.require_int(le(str_len(s), total + 4))
    else:
        b.require_int(le(str_len(s), max(len(prefix), len(suffix)) - 1))
    return b.problem


def membership_conflict_problem(rng, sat=True):
    """Intersecting regular constraints on one variable."""
    b = ProblemBuilder()
    s = b.str_var("s")
    length = rng.randint(2, 8)
    b.member(s, "[a-j]+")
    b.require_int(eq(str_len(s), length))
    if sat:
        b.member(s, "[a-e]+")
    else:
        b.member(s, "[0-9]+")   # disjoint from [a-j]+
    return b.problem


def equation_split_problem(rng, sat=True):
    """x . y = w (a concrete word): classic PyEx split shape."""
    b = ProblemBuilder()
    x, y = b.str_var("x"), b.str_var("y")
    w = _random_word(rng, 3, 8)
    cut = rng.randint(0, len(w))
    b.equal((x, y), (w,))
    b.require_int(eq(str_len(x), cut))
    if not sat:
        b.require_int(ge(str_len(y), len(w) - cut + 1))
    return b.problem


_FAMILIES = [
    ("concat", lambda rng, sat: concat_chain_problem(
        rng, rng.randint(2, 4), sat)),
    ("slicing", slicing_problem),
    ("affix", affix_problem),
    ("membership", membership_conflict_problem),
    ("split", equation_split_problem),
]


def generate(count, seed=0):
    """A mixed PyEx-style suite of *count* labeled instances."""
    rng = rng_for(seed, "pyex")
    out = []
    for i in range(count):
        name, maker = _FAMILIES[i % len(_FAMILIES)]
        sat = rng.random() < 0.75
        problem = maker(rng, sat)
        out.append(Instance("pyex/%s-%03d" % (name, i), problem,
                            "sat" if sat else "unsat"))
    return out
