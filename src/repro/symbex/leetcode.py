"""LeetCode-style benchmark instances (Tables 1 and 2).

The paper's LeetCode suites come from symbolically executing solutions to
classic problems: IPv4/IPv6 address validation, binary addition,
abbreviation checking, and digit-to-letter decoding.  Each generator below
encodes the corresponding path conditions; instances are labeled with their
ground-truth status (witness-first construction for SAT, injected
contradictions for UNSAT).
"""

from repro.logic.formula import conj, eq, ge, le
from repro.logic.terms import var as int_var
from repro.strings.ast import str_len
from repro.strings.ops import ProblemBuilder
from repro.symbex.common import Instance, rng_for


def restore_ip_problem(segments, sat=True):
    """Path of 'restore IP addresses': split a digit string into four valid
    octets.  *segments* fixes the digit count of each octet (1..3)."""
    b = ProblemBuilder()
    s = b.str_var("s")
    parts = []
    for i, width in enumerate(segments):
        seg = b.str_var("seg%d" % i)
        b.member(seg, "[0-9]{%d}" % width)
        n = b.to_num(seg, "oct%d" % i)
        b.require_int(conj(ge(int_var(n), 0), le(int_var(n), 255)))
        if width > 1:
            # No leading zeros in a valid octet.
            b.member(seg, "[1-9][0-9]*")
        parts.append(seg)
    b.equal((s,), (parts[0], ".", parts[1], ".", parts[2], ".", parts[3]))
    if not sat:
        # Contradiction: an octet above 255.
        b.require_int(ge(int_var("oct1"), 256))
    return b.problem


def valid_ipv4_membership(sat=True):
    """Pure membership formulation of IPv4 validity."""
    octet = "(25[0-5]|2[0-4][0-9]|1[0-9][0-9]|[1-9][0-9]|[0-9])"
    b = ProblemBuilder()
    s = b.str_var("s")
    b.member(s, "%s(\\.%s){3}" % (octet, octet))
    if sat:
        b.require_int(eq(str_len(s), 11))
    else:
        b.require_int(le(str_len(s), 6))    # shortest IPv4 is 7 chars
    return b.problem


def add_binary_problem(bits, sat=True):
    """Binary addition a + b = c over bit strings of width *bits*.

    Each bit is read through charAt/toNum and a carry chain links the
    columns — the dense conversion pattern of the Table 2 suite.
    """
    b = ProblemBuilder()
    a, bb, c = b.str_var("a"), b.str_var("b"), b.str_var("c")
    for s in (a, bb, c):
        b.member(s, "[01]+")
        b.require_int(eq(str_len(s), bits))
    carry = int_var("carry0")
    b.require_int(eq(carry, 0))
    for i in range(bits):
        # Process from the least significant bit (rightmost).
        pos = bits - 1 - i
        da = int_var(b.to_num(b.char_at(a, pos)))
        db = int_var(b.to_num(b.char_at(bb, pos)))
        dc = int_var(b.to_num(b.char_at(c, pos)))
        new_carry = int_var("carry%d" % (i + 1))
        total = da + db + carry
        b.require_int(eq(total, new_carry * 2 + dc))
        b.require_int(conj(ge(new_carry, 0), le(new_carry, 1)))
        carry = new_carry
    b.require_int(eq(carry, 0))     # no overflow on this path
    if not sat:
        # Contradiction: force a = c while b has a one bit and no overflow.
        b.equal((a,), (c,))
        b.member(bb, "0*10*")
    return b.problem


def abbreviation_problem(word_len, number, sat=True):
    """Word abbreviation check (e.g. i18n): w = first . mid . last with
    |mid| spelled out in decimal inside the abbreviation string."""
    b = ProblemBuilder()
    w = b.str_var("w")
    abbrev = b.str_var("abbrev")
    first, mid, last = (b.str_var("first"), b.str_var("mid"),
                        b.str_var("last"))
    for v in (first, last):
        b.member(v, "[a-z]")
    b.member(mid, "[a-z]*")
    b.member(w, "[a-z]+")
    b.equal((w,), (first, mid, last))
    b.require_int(eq(str_len(w), word_len))
    numstr = b.str_var("numstr")
    n = b.to_num(numstr, "midlen")
    b.member(numstr, "[1-9][0-9]*")
    b.require_int(eq(int_var(n), str_len(mid)))
    b.equal((abbrev,), (first, numstr, last))
    target = word_len - 2
    if sat:
        b.require_int(eq(int_var(n), target))
    else:
        b.require_int(eq(int_var(n), target + 3))   # longer than the word
    return b.problem


def decode_digits_problem(pairs, sat=True):
    """Digit-decoding path: a digit string split into two-digit groups,
    each decoding to a letter (value in 10..26)."""
    b = ProblemBuilder()
    s = b.str_var("s")
    groups = []
    for i in range(pairs):
        g = b.str_var("g%d" % i)
        b.member(g, "[0-9]{2}")
        n = b.to_num(g, "code%d" % i)
        lo, hi = (10, 26) if sat else (27, 9)
        b.require_int(conj(ge(int_var(n), lo), le(int_var(n), hi)))
        groups.append(g)
    b.equal((s,), tuple(groups))
    return b.problem


def valid_ipv6_problem(groups=4, sat=True):
    """Path of 'validate IPv6': colon-separated hexadecimal groups of one
    to four digits (shortened to *groups* fields, as symbolic executors do
    per loop unrolling)."""
    b = ProblemBuilder()
    s = b.str_var("s")
    fields = b.split_fixed(s, ":", groups)
    for field in fields:
        b.member(field, "[0-9a-f]{1,4}")
    if not sat:
        b.require_int(ge(str_len(fields[0]), 5))
    return b.problem


def reverse_check_problem(length, sat=True):
    """Basic (conversion-free) path: s equals its fixed-length reverse."""
    b = ProblemBuilder()
    s = b.str_var("s")
    b.member(s, "[a-c]+")
    b.require_int(eq(str_len(s), length))
    for i in range(length // 2):
        left = b.char_at(s, i)
        right = b.char_at(s, length - 1 - i)
        if sat:
            b.equal((left,), (right,))
        elif i == 0:
            b.equal((left,), (right,))
            b.diseq((left,), (right,))
        else:
            b.equal((left,), (right,))
    return b.problem


def word_pattern_problem(pattern, sat=True):
    """Basic path: s is a '-'-separated sequence following a letter
    pattern (equal letters mean equal segments)."""
    b = ProblemBuilder()
    s = b.str_var("s")
    segments = {}
    term = []
    for i, letter in enumerate(pattern):
        if letter not in segments:
            seg = b.str_var("seg_%s" % letter)
            b.member(seg, "[a-z]+")
            segments[letter] = seg
        if i:
            term.append("-")
        term.append(segments[letter])
    b.equal((s,), tuple(term))
    if sat:
        b.require_int(le(str_len(s), 2 * len(pattern) + 4))
        b.require_int(ge(str_len(s), 2 * len(pattern) - 1))
    else:
        b.require_int(le(str_len(s), len(pattern) - 1))
    return b.problem


def generate(count, seed=0, conversions_only=False, basic_only=False):
    """A mixed LeetCode-style suite of *count* instances.

    ``basic_only`` restricts to conversion-free families (the Table 1
    suite); ``conversions_only`` restricts to conversion-heavy families
    (the Table 2 suite).
    """
    rng = rng_for(seed, "leetcode")
    out = []

    def ip_maker(i, sat):
        segments = [rng.randint(1, 3) for _ in range(4)]
        return restore_ip_problem(segments, sat)

    conversion_makers = [
        ("restore_ip", ip_maker),
        ("add_binary", lambda i, sat: add_binary_problem(2 + i % 3, sat)),
        ("abbreviation",
         lambda i, sat: abbreviation_problem(5 + i % 6, None, sat)),
        ("decode_digits",
         lambda i, sat: decode_digits_problem(1 + i % 3, sat)),
    ]
    basic_makers = [
        ("valid_ipv4", lambda i, sat: valid_ipv4_membership(sat)),
        ("valid_ipv6",
         lambda i, sat: valid_ipv6_problem(2 + i % 3, sat)),
        ("reverse", lambda i, sat: reverse_check_problem(3 + i % 4, sat)),
        ("word_pattern",
         lambda i, sat: word_pattern_problem(
             "".join(rng.choice("abc") for _ in range(2 + i % 3)), sat)),
    ]
    if basic_only:
        makers = basic_makers
    elif conversions_only:
        makers = conversion_makers
    else:
        makers = conversion_makers + basic_makers

    for i in range(count):
        name, maker = makers[i % len(makers)]
        sat = rng.random() < 0.5
        problem = maker(i, sat)
        out.append(Instance("leetcode/%s-%03d" % (name, i), problem,
                            "sat" if sat else "unsat"))
    return out
