"""cvc4pred/cvc4term-style instances (Table 1).

The cvc4 suites from the CVC4 group are dominated by UNSAT queries over
extended string predicates (prefixof, suffixof, contains) with light
arithmetic — the shape of verification side-conditions.  We mirror that
mix: mostly-UNSAT predicate combinations plus a small SAT fraction, with a
sprinkle of string-number conversion (< 5%, as the paper notes).
"""

from repro.logic.formula import eq, ge, le
from repro.logic.terms import var as int_var
from repro.strings.ast import str_len
from repro.strings.ops import ProblemBuilder
from repro.symbex.common import Instance, rng_for

_LITS = ["a", "ab", "abc", "ba", "bb", "aab"]


def prefix_conflict_problem(rng, sat=False):
    """Two incompatible prefixes (or compatible ones, for SAT)."""
    b = ProblemBuilder()
    s = b.str_var("s")
    first = rng.choice(_LITS)
    if sat:
        second = first + rng.choice(_LITS)
    else:
        second = ("b" if first[0] == "a" else "a") + first[1:] + "a"
    b.prefix_of((first,), s)
    b.prefix_of((second,), s)
    b.require_int(le(str_len(s), 10))
    return b.problem


def contains_budget_problem(rng, sat=False):
    """contains with a length budget too small for the needles."""
    b = ProblemBuilder()
    s = b.str_var("s")
    needles = [rng.choice(_LITS) for _ in range(2)]
    for needle in needles:
        b.contains(s, (needle,))
    budget = sum(len(n) for n in needles)
    if sat:
        b.require_int(le(str_len(s), budget + 2))
        b.require_int(ge(str_len(s), max(len(n) for n in needles)))
    else:
        b.require_int(le(str_len(s), min(len(n) for n in needles) - 1))
    return b.problem


def suffix_equation_problem(rng, sat=False):
    """suffixof interacting with a concatenation equality."""
    b = ProblemBuilder()
    s, t = b.str_var("s"), b.str_var("t")
    tail = rng.choice(_LITS)
    b.suffix_of((tail,), s)
    b.equal((s,), (t, tail))
    if sat:
        b.require_int(le(str_len(t), 4))
    else:
        b.require_int(le(str_len(s), len(tail) - 1))
    return b.problem


def term_rewrite_problem(rng, sat=False):
    """cvc4term shape: equalities between composed terms."""
    b = ProblemBuilder()
    x, y = b.str_var("x"), b.str_var("y")
    lit = rng.choice(_LITS)
    b.equal((x, lit), (lit, y))
    b.require_int(eq(str_len(x), str_len(y)))
    if sat:
        b.require_int(le(str_len(x), 5))
    else:
        # |x lit| = |lit y| always; demand inconsistent lengths instead.
        b.require_int(eq(str_len(x), str_len(y) + 1))
    return b.problem


def rare_conversion_problem(rng, sat=False):
    """The < 5% of cvc4 instances touching string-number conversion."""
    b = ProblemBuilder()
    s = b.str_var("s")
    b.member(s, "[0-9]{2}")
    n = b.to_num(s, "n")
    if sat:
        b.require_int(ge(int_var("n"), 10))
    else:
        b.require_int(ge(int_var("n"), 100))
    return b.problem


_FAMILIES = [prefix_conflict_problem, contains_budget_problem,
             suffix_equation_problem, term_rewrite_problem]


def generate(count, seed=0, flavor="pred"):
    """A cvc4-style suite: mostly UNSAT, a small SAT and conversion tail."""
    rng = rng_for(seed, "cvc4-" + flavor)
    out = []
    for i in range(count):
        if rng.random() < 0.04:
            maker, name = rare_conversion_problem, "conv"
        else:
            maker = _FAMILIES[(i + (1 if flavor == "term" else 0))
                              % len(_FAMILIES)]
            name = maker.__name__.replace("_problem", "")
        sat = rng.random() < 0.12
        out.append(Instance("cvc4%s/%s-%03d" % (flavor, name, i),
                            maker(rng, sat), "sat" if sat else "unsat"))
    return out
