"""Benchmark generators: path constraints from symbolic execution.

The paper's evaluation suites come from symbolic executors (PyEx,
Py-Conbyte) run over concrete programs.  Each module here encodes the path
conditions of one such program family directly as
:class:`~repro.strings.ast.StringProblem` instances:

* :mod:`repro.symbex.luhn` — the checkLuhn credit-card validation paths
  (Table 3 and the JavaScript suite of Table 2);
* :mod:`repro.symbex.leetcode` — LeetCode-style programs (IP validation,
  binary addition, abbreviations, digit decoding);
* :mod:`repro.symbex.pythonlib` — Python-library-style parsing
  (int() round-trips, date/time fields);
* :mod:`repro.symbex.javascript` — JavaScript array-index semantics;
* :mod:`repro.symbex.pyex` — PyEx-style random path constraints over basic
  string operations;
* :mod:`repro.symbex.fuzz` — StringFuzz-style generated instances;
* :mod:`repro.symbex.cvc4` — cvc4pred/cvc4term-style mostly-UNSAT
  predicate instances.
"""

from repro.symbex.luhn import luhn_problem

__all__ = ["luhn_problem"]
