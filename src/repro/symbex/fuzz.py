"""StringFuzz-style generated instances (Table 1).

StringFuzz stresses solvers with synthetic shapes rather than program
paths: long concatenation chains, deep regex nesting, and length-arithmetic
ladders.  The generators mirror those shapes at sizes our pure-Python
substrate handles.  Where a witness is constructed the label is certified;
a few families are genuinely unlabeled (expected=None), as in the paper,
where ground truth came from cross-validation.
"""

from repro.logic.formula import eq, ge, le
from repro.strings.ast import str_len
from repro.strings.ops import ProblemBuilder
from repro.symbex.common import Instance, rng_for


def concat_ladder_problem(rng, depth, sat=True):
    """x0 = x1 . x2, x1 = x3 . x4, ... with length arithmetic at the leaves."""
    b = ProblemBuilder()
    total = rng.randint(depth, 2 * depth)
    root = b.str_var("x0")
    b.require_int(eq(str_len(root), total))
    current = root
    for i in range(depth):
        left = b.str_var("l%d" % i)
        right = b.str_var("r%d" % i)
        b.equal((current,), (left, right))
        b.require_int(ge(str_len(left), 1))
        current = right
    if not sat:
        # The chain forces |x0| >= depth pieces of size >= 1 plus the tail;
        # demanding a shorter root contradicts.
        b.require_int(le(str_len(root), depth - 1))
    return b.problem


def regex_depth_problem(rng, depth, sat=True):
    """Nested alternations/repetitions on one variable.

    The length is sampled from the language's actual length set so the
    SAT label is certified.
    """
    from repro.automata.regex import regex_to_nfa
    inner = rng.choice(["ab", "a|b", "[a-c]"])
    regex = inner
    for _ in range(depth):
        regex = "(%s)%s" % (regex, rng.choice(["*", "+", "{1,2}"]))
    nfa = regex_to_nfa(regex)
    witness_lengths = sorted({len(w) for w in nfa.enumerate_words(6)
                              if len(w) >= 1}) or [1]
    b = ProblemBuilder()
    s = b.str_var("s")
    b.member(s, regex)
    b.require_int(eq(str_len(s), rng.choice(witness_lengths)))
    if not sat:
        b.member(s, "[0-9]+")
    return b.problem


def length_ladder_problem(rng, rungs, sat=True):
    """|x1| = 2|x0|, |x2| = 2|x1|, ... — exponential length growth."""
    b = ProblemBuilder()
    base = b.str_var("x0")
    b.require_int(ge(str_len(base), 1))
    b.require_int(le(str_len(base), 2))
    prev = base
    for i in range(1, rungs + 1):
        nxt = b.str_var("x%d" % i)
        b.require_int(eq(str_len(nxt), str_len(prev) * 2))
        b.member(nxt, "[ab]+")
        prev = nxt
    if not sat:
        b.require_int(le(str_len(prev), 0))
    return b.problem


def overlapping_equations_problem(rng, sat=None):
    """Unlabeled family: random small word equations (cross-validated)."""
    b = ProblemBuilder()
    x, y, z = b.str_var("x"), b.str_var("y"), b.str_var("z")
    lits = ["a", "b", "ab", "ba"]
    b.equal((x, rng.choice(lits)), (rng.choice(lits), y))
    b.equal((y, z), (z, rng.choice(lits)))
    b.require_int(le(str_len(x), 6))
    b.require_int(le(str_len(z), 6))
    return b.problem


def generate(count, seed=0):
    """A StringFuzz-style suite of *count* instances."""
    rng = rng_for(seed, "fuzz")
    out = []
    for i in range(count):
        roll = i % 4
        sat = rng.random() < 0.6
        if roll == 0:
            p = concat_ladder_problem(rng, 2 + i % 4, sat)
            expected = "sat" if sat else "unsat"
            name = "ladder"
        elif roll == 1:
            p = regex_depth_problem(rng, 1 + i % 3, sat)
            expected = "sat" if sat else "unsat"
            name = "regex"
        elif roll == 2:
            p = length_ladder_problem(rng, 1 + i % 3, sat)
            expected = "sat" if sat else "unsat"
            name = "lengths"
        else:
            p = overlapping_equations_problem(rng)
            expected = None
            name = "wordeq"
        out.append(Instance("fuzz/%s-%03d" % (name, i), p, expected))
    return out
