"""Path constraints of the checkLuhn algorithm (paper Section 1, Table 3).

The JavaScript program validates a digit string by summing the digits at
odd positions (from the right) with the doubled-and-adjusted digits at even
positions, and accepting when the sum ends in 0.  The path that traverses
both loops a fixed number of times and passes the final test induces the
constraint system of Section 1:

* ``value in [1-9]+`` and ``|value| = k``,
* per iteration: ``d_i = toNum(charAt(value, i))`` with the position
  arithmetic of the two loops,
* the even digits doubled and reduced by 9 when above 9 (an ``ite``),
* ``charAt(toStr(sum), |toStr(sum)| - 1) = "0"``.
"""

from repro.logic.formula import eq, gt
from repro.logic.terms import var as int_var
from repro.strings.ast import str_len
from repro.strings.ops import ProblemBuilder


def luhn_problem(k, accept=True):
    """The checkLuhn path constraint for a *k*-digit input.

    With ``accept=True`` the path ends in the validation passing (these are
    the satisfiable Table 3 instances); ``accept=False`` asks for a failing
    final check instead.
    """
    if k < 2:
        raise ValueError("the Luhn benchmark needs at least two digits")
    b = ProblemBuilder()
    value = b.str_var("value")
    b.member(value, "[1-9]+")
    b.require_int(eq(str_len(value), k))

    total = int_var("sum0")
    b.require_int(eq(total, 0))
    step = 0

    # First loop: positions k-1, k-3, ... (odd digits, counted from the
    # right); each contributes its value directly.
    for i in range(k - 1, -1, -2):
        c = b.char_at(value, i)
        d = b.to_num(c)
        step += 1
        new_total = int_var("sum%d" % step)
        b.require_int(eq(new_total, total + int_var(d)))
        total = new_total

    # Second loop: positions k-2, k-4, ...; each digit is doubled and
    # reduced by 9 when the double exceeds 9.
    for i in range(k - 2, -1, -2):
        c = b.char_at(value, i)
        d = b.to_num(c)
        doubled = int_var(d) * 2
        adjusted = b.ite_int(gt(doubled, 9), doubled - 9, doubled)
        step += 1
        new_total = int_var("sum%d" % step)
        b.require_int(eq(new_total, total + int_var(adjusted)))
        total = new_total

    # The final test: the last character of toStr(sum) is '0' (or is not,
    # for the failing path).
    sum_name = "sum%d" % step
    sum_str = b.to_str(sum_name)
    last = b.char_at(sum_str, str_len(sum_str) - 1)
    if accept:
        b.equal((last,), ("0",))
    else:
        b.diseq((last,), ("0",))
    return b.problem
