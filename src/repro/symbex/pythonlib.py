"""Python-core-library-style instances (the PythonLib suite of Table 2).

The paper collected these by running Py-Conbyte over library code that
parses numbers and date/time fields out of strings.  The families below
encode those paths: ``int(s)`` round-trips, zero-padded field parsing, and
date/time validation with range checks on the converted values.
"""

from repro.logic.formula import conj, eq, ge, le
from repro.logic.terms import var as int_var
from repro.strings.ast import str_len
from repro.strings.ops import ProblemBuilder
from repro.symbex.common import Instance, rng_for


def int_roundtrip_problem(value_digits, sat=True):
    """``int(s)`` then ``str(int(s))``: the round-trip strips leading
    zeros, so s must already be canonical for equality to hold."""
    b = ProblemBuilder()
    s = b.str_var("s")
    b.member(s, "[0-9]{%d}" % value_digits)
    n = b.to_num(s, "n")
    t = b.to_str("n")
    if sat:
        b.equal((s,), (t,))
        if value_digits > 1:
            b.member(s, "[1-9][0-9]*")
    else:
        # Leading zero guaranteed but round-trip equality demanded.
        b.member(s, "0[0-9]*")
        b.equal((s,), (t,))
        b.require_int(ge(str_len(s), 2))
        b.require_int(ge(int_var("n"), 1))
    return b.problem


def parse_date_problem(sat=True):
    """strptime("%Y-%m-%d")-style path with range checks on the fields."""
    b = ProblemBuilder()
    s = b.str_var("s")
    y, m, d = b.str_var("y"), b.str_var("m"), b.str_var("d")
    b.member(y, "[0-9]{4}")
    b.member(m, "[0-9]{2}")
    b.member(d, "[0-9]{2}")
    b.equal((s,), (y, "-", m, "-", d))
    ny = b.to_num(y, "year")
    nm = b.to_num(m, "month")
    nd = b.to_num(d, "day")
    b.require_int(conj(ge(int_var("year"), 1), le(int_var("year"), 9999)))
    b.require_int(conj(ge(int_var("month"), 1), le(int_var("month"), 12)))
    if sat:
        b.require_int(conj(ge(int_var("day"), 1), le(int_var("day"), 31)))
    else:
        # The format regex caps the day field at 31, so demanding an
        # out-of-range value contradicts.
        b.member(d, "[0-2][0-9]|3[01]")
        b.require_int(ge(int_var("day"), 32))
    return b.problem


def parse_time_problem(sat=True):
    """"HH:MM:SS" parsing with field ranges."""
    b = ProblemBuilder()
    s = b.str_var("s")
    h, m, sec = b.str_var("h"), b.str_var("m"), b.str_var("sec")
    for f in (h, m, sec):
        b.member(f, "[0-9]{2}")
    b.equal((s,), (h, ":", m, ":", sec))
    nh = b.to_num(h, "hh")
    nm = b.to_num(m, "mm")
    ns = b.to_num(sec, "ss")
    b.require_int(le(int_var("hh"), 23))
    b.require_int(le(int_var("mm"), 59))
    if sat:
        b.require_int(le(int_var("ss"), 59))
    else:
        # The format regex caps the seconds field below 60, so demanding
        # an out-of-range value contradicts.
        b.member(sec, "[0-5][0-9]")
        b.require_int(ge(int_var("ss"), 60))
    return b.problem


def zero_padded_field_problem(width, value, sat=True):
    """Parsing a zero-padded counter field: s is width digits and its value
    is fixed; UNSAT variant demands a value too wide for the field."""
    b = ProblemBuilder()
    s = b.str_var("s")
    b.member(s, "[0-9]{%d}" % width)
    n = b.to_num(s, "n")
    target = value if sat else 10 ** width
    b.require_int(eq(int_var("n"), target))
    return b.problem


def not_a_number_problem(sat=True):
    """Error-handling path: the input fails int() — toNum yields -1."""
    b = ProblemBuilder()
    s = b.str_var("s")
    n = b.to_num(s, "n")
    b.require_int(eq(int_var("n"), -1))
    b.require_int(eq(str_len(s), 3))
    if sat:
        b.member(s, "[a-z]+")
    else:
        b.member(s, "[0-9]+")   # a digit string cannot convert to -1
    return b.problem


def generate(count, seed=0):
    """A mixed PythonLib-style suite of *count* instances."""
    rng = rng_for(seed, "pythonlib")
    makers = [
        ("int_roundtrip",
         lambda i, sat: int_roundtrip_problem(1 + i % 4, sat)),
        ("parse_date", lambda i, sat: parse_date_problem(sat)),
        ("parse_time", lambda i, sat: parse_time_problem(sat)),
        ("zero_padded",
         lambda i, sat: zero_padded_field_problem(
             2 + i % 3, rng.randint(0, 10 ** (2 + i % 3) - 1), sat)),
        ("not_a_number", lambda i, sat: not_a_number_problem(sat)),
    ]
    out = []
    for i in range(count):
        name, maker = makers[i % len(makers)]
        sat = rng.random() < 0.6
        out.append(Instance("pythonlib/%s-%03d" % (name, i),
                            maker(i, sat), "sat" if sat else "unsat"))
    return out
