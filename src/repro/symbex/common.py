"""Shared plumbing for benchmark generators."""

import random


class Instance:
    """One benchmark instance: a problem plus its ground-truth status.

    ``expected`` is "sat", "unsat", or None when the generator cannot
    certify the answer (fuzzed instances); the harness then falls back to
    cross-validation between solvers, as the paper does.
    """

    __slots__ = ("name", "problem", "expected")

    def __init__(self, name, problem, expected=None):
        self.name = name
        self.problem = problem
        self.expected = expected

    def __repr__(self):
        return "Instance(%s, expected=%s)" % (self.name, self.expected)


def rng_for(seed, salt):
    """Deterministic per-family RNG."""
    return random.Random((seed, salt).__hash__() & 0x7FFFFFFF)
