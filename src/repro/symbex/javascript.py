"""JavaScript-semantics instances (the JavaScript suite of Table 2).

Faithful symbolic execution of JavaScript must model array indices as
strings with implicit string-number conversion (paper Section 1): ``x[3]``,
``x[03]`` and ``x["3"]`` alias while ``x["03"]`` does not, and ``"03"-1``
converts, subtracts, and converts back.  The families below encode those
aliasing and arithmetic paths, plus the checkLuhn paths the paper also
counts in this suite.
"""

from repro.logic.formula import conj, eq, ge, le
from repro.logic.terms import var as int_var
from repro.strings.ast import str_len
from repro.strings.ops import ProblemBuilder
from repro.symbex.common import Instance, rng_for
from repro.symbex.luhn import luhn_problem


def noncanonical_index_problem(sat=True):
    """Find an index string that does NOT alias its numeric form: s is a
    numeral but s != toStr(toNum(s)) — e.g. "03"."""
    b = ProblemBuilder()
    s = b.str_var("s")
    b.member(s, "[0-9]+")
    n = b.to_num(s, "n")
    canonical = b.to_str("n")
    if sat:
        b.diseq((s,), (canonical,))
        b.require_int(le(str_len(s), 6))
    else:
        # A canonical numeral that differs from itself.
        b.equal((s,), (canonical,))
        b.diseq((s,), (canonical,))
    return b.problem


def index_arithmetic_problem(offset, sat=True):
    """The ``x["03"-1]`` path: evaluate s - offset, convert back, and land
    on a required target cell."""
    b = ProblemBuilder()
    s = b.str_var("s")
    b.member(s, "[0-9]+")
    b.require_int(le(str_len(s), 4))
    n = b.to_num(s, "n")
    b.require_int(ge(int_var("n"), offset))
    b.require_int(eq(int_var("j"), int_var("n") - offset))
    target = b.to_str("j", b.str_var("target"))
    b.equal((target,), ("2",))
    if not sat:
        # The same cell must also alias an impossible numeral.
        b.require_int(eq(int_var("j"), 3))
    return b.problem


def aliasing_problem(sat=True):
    """Two textually different index strings hitting the same cell: both
    convert to the same number, but only one is canonical."""
    b = ProblemBuilder()
    s1, s2 = b.str_var("s1"), b.str_var("s2")
    b.member(s1, "[0-9]+")
    b.member(s2, "[0-9]+")
    n1 = b.to_num(s1, "n1")
    n2 = b.to_num(s2, "n2")
    b.require_int(eq(int_var("n1"), int_var("n2")))
    b.require_int(ge(int_var("n1"), 0))
    b.diseq((s1,), (s2,))
    b.require_int(conj(le(str_len(s1), 5), le(str_len(s2), 5)))
    if not sat:
        # Canonical numerals that convert equal must be equal.
        b.member(s1, "0|[1-9][0-9]*")
        b.member(s2, "0|[1-9][0-9]*")
    return b.problem


def array_bounds_problem(length, sat=True):
    """Write through a converted index, then require it in bounds."""
    b = ProblemBuilder()
    s = b.str_var("s")
    b.member(s, "[0-9]{1,3}")
    n = b.to_num(s, "n")
    if sat:
        b.require_int(conj(ge(int_var("n"), 0),
                           le(int_var("n"), length - 1)))
    else:
        b.require_int(conj(ge(int_var("n"), length),
                           le(int_var("n"), length),
                           le(str_len(s), 0)))
    return b.problem


def generate(count, seed=0, luhn_sizes=(2, 3, 4)):
    """The JavaScript suite: aliasing/arithmetic paths plus small Luhn."""
    rng = rng_for(seed, "javascript")
    makers = [
        ("noncanonical", lambda i, sat: noncanonical_index_problem(sat)),
        ("index_arith",
         lambda i, sat: index_arithmetic_problem(1 + i % 3, sat)),
        ("aliasing", lambda i, sat: aliasing_problem(sat)),
        ("bounds", lambda i, sat: array_bounds_problem(5 + i % 5, sat)),
    ]
    out = []
    for i in range(count):
        name, maker = makers[i % len(makers)]
        sat = rng.random() < 0.7
        out.append(Instance("javascript/%s-%03d" % (name, i),
                            maker(i, sat), "sat" if sat else "unsat"))
    for k in luhn_sizes:
        out.append(Instance("javascript/luhn-%02d" % k,
                            luhn_problem(k), "sat"))
    return out
