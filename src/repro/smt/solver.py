"""Lazy DPLL(T) over linear integer arithmetic.

This module stands in for Z3's core in the reproduction (the paper
implements its procedure as a Z3 theory plugin).  The flattened string
constraint is a boolean combination of linear atoms; the pipeline is

1. presolve — eliminate defined variables, propagate intervals;
2. Tseitin — CNF skeleton with canonicalized atoms;
3. root propagation — atoms fixed at decision level zero are asserted into
   the (persistent, incremental) integer solver once;
4. lazy loop — the CDCL core enumerates propositional models; the atoms the
   model commits to (skipping don't-care polarities that never occur in the
   CNF) are checked by branch-and-bound inside a push/pop frame; a theory
   conflict adds its (negated) core as a blocking clause.

Soundness: a returned model satisfies every asserted atom with the polarity
the SAT model chose, hence satisfies the formula (the skeleton is monotone
in the unasserted don't-care atoms).  Completeness relative to the budgets:
every propositional model is either accepted or excluded by a clause that
only rules out theory-inconsistent assignments.
"""

from repro import faults as _faults
from repro.config import Deadline, DEFAULT_CONFIG
from repro.errors import SolverError
from repro.lia.branch_bound import IntegerSolver
from repro.logic.cnf import tseitin
from repro.logic.formula import BoolConst, variables_of
from repro.logic.presolve import presolve, reconstruct_model
from repro.obs import current_metrics, current_tracer
from repro import kernels as _kernels
from repro.sat import SAT, UNSAT


class SmtResult:
    """Outcome of an SMT query."""

    __slots__ = ("status", "model", "stats")

    def __init__(self, status, model=None, stats=None):
        self.status = status      # "sat" | "unsat" | "unknown"
        self.model = model        # var name -> int, when sat
        self.stats = stats or {}

    def __repr__(self):
        return "SmtResult(%s)" % self.status


def corrupt_result(result):
    """The mutator the ``smt.solve``/``smt.session.solve`` corrupt-mode
    fault points apply: perturb *every* model value of a SAT answer (a
    single-variable lie could land on an auxiliary the decoder ignores),
    so the decoded strings fail concrete validation and exercise the
    model quarantine of the degradation ladder."""
    if result.status == "sat" and result.model:
        for name, value in list(result.model.items()):
            result.model[name] = (value + 1) if isinstance(value, int) else 0
    return result


def solve_formula(formula, deadline=None, config=None, simplify=True):
    """Decide satisfiability of a linear-atom formula over the integers."""
    if _faults.ARMED:
        _faults.point("smt.solve")
    tracer = current_tracer()
    with tracer.span("smt.solve") as span:
        result = _solve_formula(formula, deadline, config, simplify, tracer)
        if _faults.ARMED:
            result = _faults.corrupt("smt.solve", result, corrupt_result)
        span.set(status=result.status, **result.stats)
        metrics = current_metrics()
        if metrics.enabled:
            metrics.add("smt.calls")
            metrics.add("smt.iterations", result.stats.get("iterations", 0))
    return result


def _solve_formula(formula, deadline, config, simplify, tracer):
    deadline = deadline or Deadline.unbounded()
    config = config or DEFAULT_CONFIG
    # A Budget carries the limits itself; a plain deadline defers to the
    # config knobs (Budget limits win so one object governs the solve).
    iteration_limit = deadline.smt_iteration_limit \
        or config.smt_iteration_limit
    node_limit = deadline.bb_node_limit or config.bb_node_limit

    all_vars = variables_of(formula)
    steps = []
    if simplify:
        with tracer.span("smt.presolve"):
            formula, steps = presolve(formula)

    if isinstance(formula, BoolConst):
        if not formula.value:
            return SmtResult("unsat")
        model = reconstruct_model({}, steps)
        for name in all_vars:
            model.setdefault(name, 0)
        return SmtResult("sat", model=model)

    with tracer.span("smt.tseitin") as span:
        clauses, registry = tseitin(formula)
        span.set(clauses=len(clauses), variables=registry.variable_count)
    metrics = current_metrics()
    if metrics.enabled:
        metrics.observe("smt.vars", len(all_vars))
        metrics.observe("smt.clauses", len(clauses))
    sat = _kernels.sat_solver()
    sat.ensure_var(registry.variable_count)
    for clause in clauses:
        if not sat.add_clause(clause):
            return SmtResult("unsat")
    if not sat.simplify():
        return SmtResult("unsat")

    lia = IntegerSolver(node_limit=node_limit, deadline=deadline)

    # Atoms fixed by root-level propagation are permanent facts.
    fixed_vars = set()
    for lit in sat.level0_literals():
        atom = registry.atom_of(abs(lit))
        if atom is None:
            continue
        fixed_vars.add(abs(lit))
        expr = atom.expr if lit > 0 else atom.negate().expr
        if lia.assert_base(expr, tag=lit) is not None:
            return SmtResult("unsat")

    theory_vars = [v for v in registry.theory_variables()
                   if v not in fixed_vars]
    iterations = 0

    while True:
        iterations += 1
        if deadline.expired():
            return SmtResult("unknown", stats={"iterations": iterations,
                                               "stopped_by": "deadline"})
        if iterations > iteration_limit:
            return SmtResult("unknown",
                             stats={"iterations": iterations,
                                    "stopped_by": "smt-iterations"})
        outcome = sat.solve(deadline=deadline)
        if outcome == UNSAT:
            return SmtResult("unsat", stats={"iterations": iterations})
        if outcome != SAT:
            return SmtResult("unknown", stats={"iterations": iterations,
                                               "stopped_by": "deadline"})
        bool_model = sat.model()

        assertions = []
        for v in theory_vars:
            atom = registry.atom_of(v)
            if bool_model.get(v, False):
                if registry.occurs(v):
                    assertions.append((atom.expr, v))
            elif registry.occurs(-v):
                assertions.append((atom.negate().expr, -v))
        result = lia.check(assertions)

        if result.status == "sat":
            model = reconstruct_model(result.model, steps)
            for name in all_vars:
                model.setdefault(name, 0)
            return SmtResult("sat", model=model,
                             stats={"iterations": iterations})
        if result.status == "unknown":
            return SmtResult("unknown",
                             stats={"iterations": iterations,
                                    "stopped_by": result.reason
                                    or "bb-nodes"})
        core = result.conflict
        if not core:
            raise SolverError("theory conflict with empty core")
        metrics.add("smt.theory_conflicts")
        metrics.observe("smt.core_size", len(core))
        if not sat.add_clause([-tag for tag in core]):
            return SmtResult("unsat", stats={"iterations": iterations})
