"""Lazy SMT(LIA) solver: CDCL SAT core + branch-and-bound integer theory."""

from repro.smt.session import IncrementalSmtSession
from repro.smt.solver import SmtResult, solve_formula

__all__ = ["IncrementalSmtSession", "SmtResult", "solve_formula"]
