"""Incremental SMT solving across refinement rounds.

``solve_formula`` treats every query as a cold start; the CEGAR loop of
:class:`~repro.core.solver.TrauSolver`, however, feeds it a *sequence* of
round formulas that share most of their structure (a refinement round only
replaces the fragments whose PFA grew).  An :class:`IncrementalSmtSession`
exploits that:

* one :class:`~repro.sat.SatSolver` lives for the whole session, so learnt
  clauses, variable activities and saved phases carry over between rounds;
* one :class:`~repro.logic.cnf.AtomRegistry` plus a persistent Tseitin
  node cache keep atom-to-variable numbering stable, so an atom shared by
  two rounds is *the same* SAT variable in both;
* each round formula arrives as keyed **fragments**.  A fragment whose
  formula is unchanged since the previous round is reused wholesale (its
  clauses are already in the solver); a changed fragment is re-encoded and
  its stale version is retired permanently.

Soundness of clause reuse (see DESIGN.md Section 6): definitional Tseitin
clauses only relate fresh label variables to their definitions, so they
are valid in *any* formula and are added unguarded.  Only the root
assertion of a fragment is conditional: it is guarded by a fresh
**activation literal** ``g`` as the clause ``(not g) or root`` and the
round is solved under the assumptions ``g_1 .. g_k`` of its active
fragments.  Every clause the SAT core learns is a consequence of
permanently-present clauses (guards are plain variables to the core), so
learnt clauses never need to be forgotten; retiring a fragment asserts
``not g`` at level zero, which simply satisfies its guard clause forever.

The theory side re-harvests its base facts per round: literals implied by
unit propagation under the round's assumptions are asserted as permanent
facts into a fresh per-round :class:`~repro.lia.branch_bound.IntegerSolver`
(which is itself incremental across the round's lazy-loop iterations).
Theory conflicts become *unguarded* blocking clauses — a theory lemma is
valid regardless of which fragments are active — so later rounds inherit
them too.
"""

from repro import faults as _faults
from repro.config import Deadline, DEFAULT_CONFIG
from repro.errors import SolverError
from repro.lia.branch_bound import IntegerSolver
from repro.logic.cnf import AtomRegistry, encode_into
from repro.logic.formula import BoolConst, atoms_of, nnf, variables_of
from math import inf

from repro.logic.presolve import collect_bounds, presolve, reconstruct_model
from repro.obs import current_metrics, current_tracer
from repro import kernels as _kernels
from repro.sat import SAT, UNSAT
from repro.smt.solver import SmtResult, corrupt_result


class _Fragment:
    """One keyed piece of a round formula, as encoded in the session."""

    __slots__ = ("formula", "guard", "clause_count", "atom_vars")


class IncrementalSmtSession:
    """A persistent SMT context for a sequence of related queries."""

    def __init__(self, config=None):
        self.config = config or DEFAULT_CONFIG
        self.registry = AtomRegistry()
        self.sat = _kernels.sat_solver(getattr(self.config, "backend", None))
        self._encode_cache = {}
        self._fragments = {}            # key -> _Fragment
        # key -> (raw, raw_vars, own_bounds, reduced, steps, eliminated,
        # ambient): the local presolve of each raw fragment, reusable
        # while the raw formula is the same object, no variable it
        # eliminated has since become shared with another fragment, and
        # the ambient bounds its folding saw are unchanged.
        self._presolve_cache = {}
        self._globally_unsat = False
        # Theory conflict cores learnt this session, kept as
        # ((atom, polarity), ...) tuples: a naming-independent form the
        # persistent store can ship to a future worker boot.
        self._lemmas = []
        self.rounds = 0

    # -- per-fragment presolve ----------------------------------------------

    def _presolve_fragments(self, fragments):
        """Locally presolve each fragment; returns (reduced, steps, vars).

        Elimination is restricted to variables occurring in exactly one
        fragment, so the conjunction of the reduced fragments stays
        equisatisfiable with the round formula and every fragment's
        reduction is independent of the others — which is what makes it
        cacheable across rounds.  Interval folding additionally sees the
        *ambient* bounds the other fragments' top-level atoms imply (a
        pinned length in one fragment folds the positional equations of
        another); since retention keeps top-level single-variable bounds
        in every reduced fragment, those justifying atoms survive
        presolve and the folding stays sound for the round.  A cached
        reduction is revalidated against the current sharing structure
        and ambient bounds: a variable that was fragment-local (and
        eliminated) last round may be mentioned by a newly flattened
        fragment this round, and a bound another fragment contributed may
        have changed — either forces a re-presolve.
        """
        entries = []
        occurrences = {}
        global_env = {}
        for key, formula in fragments:
            cached = self._presolve_cache.get(key)
            if cached is not None and cached[0] is not formula:
                cached = None
            if cached is not None:
                raw_vars, own_bounds = cached[1], cached[2]
            else:
                raw_vars = frozenset(variables_of(formula))
                own_bounds = collect_bounds(formula)
            entries.append((key, formula, raw_vars, own_bounds, cached))
            for v in raw_vars:
                occurrences[v] = occurrences.get(v, 0) + 1
            for v, (lo, hi) in own_bounds.items():
                env_lo, env_hi = global_env.get(v, (-inf, inf))
                global_env[v] = (max(lo, env_lo), min(hi, env_hi))
        reduced_fragments = []
        steps = []
        all_vars = set()
        for key, formula, raw_vars, own_bounds, cached in entries:
            all_vars.update(raw_vars)
            shared = {v for v in raw_vars if occurrences[v] > 1}
            ambient = {v: global_env[v] for v in raw_vars
                       if v in global_env}
            if cached is not None and not (cached[5] & shared) \
                    and cached[6] == ambient:
                reduced_fragments.append((key, cached[3]))
                steps.extend(cached[4])
                continue
            reduced, frag_steps = presolve(formula,
                                           allowed=raw_vars - shared,
                                           ambient=ambient)
            self._presolve_cache[key] = (
                formula, raw_vars, own_bounds, reduced, frag_steps,
                frozenset(v for v, _ in frag_steps), ambient)
            reduced_fragments.append((key, reduced))
            steps.extend(frag_steps)
        return reduced_fragments, steps, all_vars

    # -- fragment management ------------------------------------------------

    def _install(self, key, formula):
        """Encode *formula* under *key*; returns (fragment, reused)."""
        old = self._fragments.get(key)
        if old is not None and (old.formula is formula
                                or old.formula == formula):
            return old, True
        if old is not None:
            # Retire the stale version for good: its guard goes false at
            # level zero, permanently satisfying its root clause.
            if not self.sat.add_clause([-old.guard]):
                self._globally_unsat = True
        frag = _Fragment()
        frag.formula = formula
        clauses = []
        root = encode_into(nnf(formula), self.registry, self._encode_cache,
                           clauses)
        guard = self.registry.fresh_var()
        clauses.append([-guard, root])
        for clause in clauses:
            if not self.sat.add_clause(clause):
                self._globally_unsat = True
        frag.guard = guard
        frag.clause_count = len(clauses)
        frag.atom_vars = frozenset(
            abs(self.registry.literal(a)) for a in atoms_of(formula))
        self._fragments[key] = frag
        return frag, False

    # -- solving ------------------------------------------------------------

    def solve(self, fragments, deadline=None):
        """Decide the conjunction of keyed *fragments* for this round.

        *fragments* is an ordered sequence of ``(key, formula)`` pairs;
        fragments keyed like a previous round's and structurally equal to
        it are reused without re-encoding.  Returns an
        :class:`~repro.smt.solver.SmtResult` exactly like
        ``solve_formula`` would for the conjunction.
        """
        if _faults.ARMED:
            _faults.point("smt.session.solve")
        tracer = current_tracer()
        with tracer.span("smt.solve", incremental=True) as span:
            result = self._solve(fragments, deadline)
            if _faults.ARMED:
                result = _faults.corrupt("smt.session.solve", result,
                                         corrupt_result)
            span.set(status=result.status, **result.stats)
            metrics = current_metrics()
            if metrics.enabled:
                metrics.add("smt.calls")
                metrics.add("smt.iterations",
                            result.stats.get("iterations", 0))
        return result

    def _solve(self, fragments, deadline):
        deadline = deadline or Deadline.unbounded()
        config = self.config
        # Budget limits govern when present; config knobs are the default.
        iteration_limit = deadline.smt_iteration_limit \
            or config.smt_iteration_limit
        node_limit = deadline.bb_node_limit or config.bb_node_limit
        metrics = current_metrics()
        self.rounds += 1

        if config.use_presolve:
            fragments, steps, all_vars = self._presolve_fragments(fragments)
        else:
            steps = []
            all_vars = set()
            for _key, formula in fragments:
                all_vars.update(variables_of(formula))

        active = []
        reused_clauses = 0
        encoded = 0
        # A false fragment decides the round, but the remaining fragments
        # are still installed: the ones that survive into the next round
        # unchanged (typically everything except the too-small PFA that
        # caused the falsehood) are then reused instead of re-encoded.
        round_unsat = False
        for key, formula in fragments:
            if isinstance(formula, BoolConst):
                if not formula.value:
                    round_unsat = True
                continue
            frag, reused = self._install(key, formula)
            active.append(frag)
            if reused:
                reused_clauses += frag.clause_count
            else:
                encoded += 1
        if metrics.enabled:
            metrics.add("smt.clauses_reused", reused_clauses)
            metrics.add("smt.fragments_encoded", encoded)
            metrics.add("smt.fragments_reused", len(active) - encoded)
        if round_unsat or self._globally_unsat:
            return SmtResult("unsat",
                             stats={"reused_clauses": reused_clauses})

        assumptions = [frag.guard for frag in active]

        if not self.sat.simplify():
            self._globally_unsat = True
            return SmtResult("unsat",
                             stats={"reused_clauses": reused_clauses})

        # Facts for the theory: literals that hold whenever this round's
        # guards do.  They seed a fresh integer solver (fresh per round
        # because base facts are permanent inside an IntegerSolver, and
        # the guard set changes between rounds).
        implied = self.sat.propagate_assumptions(assumptions)
        if implied is None:
            if not self.sat._ok:
                self._globally_unsat = True
            return SmtResult("unsat",
                             stats={"reused_clauses": reused_clauses})

        lia = IntegerSolver(node_limit=node_limit, deadline=deadline)
        registry = self.registry
        fixed_vars = set()
        for lit in implied:
            atom = registry.atom_of(abs(lit))
            if atom is None:
                continue
            fixed_vars.add(abs(lit))
            expr = atom.expr if lit > 0 else atom.negate().expr
            if lia.assert_base(expr, tag=lit) is not None:
                return SmtResult("unsat",
                                 stats={"reused_clauses": reused_clauses})

        theory_vars = set()
        for frag in active:
            theory_vars.update(frag.atom_vars)
        theory_vars = sorted(theory_vars - fixed_vars)

        stats = {"reused_clauses": reused_clauses}
        iterations = 0
        while True:
            iterations += 1
            stats["iterations"] = iterations
            if deadline.expired():
                stats["stopped_by"] = "deadline"
                return SmtResult("unknown", stats=stats)
            if iterations > iteration_limit:
                stats["stopped_by"] = "smt-iterations"
                return SmtResult("unknown", stats=stats)
            outcome = self.sat.solve(deadline=deadline,
                                     assumptions=assumptions)
            if outcome == UNSAT:
                if not self.sat._ok:
                    self._globally_unsat = True
                return SmtResult("unsat", stats=stats)
            if outcome != SAT:
                stats["stopped_by"] = "deadline"
                return SmtResult("unknown", stats=stats)
            bool_model = self.sat.model()

            assertions = []
            for v in theory_vars:
                atom = registry.atom_of(v)
                if bool_model.get(v, False):
                    if registry.occurs(v):
                        assertions.append((atom.expr, v))
                elif registry.occurs(-v):
                    assertions.append((atom.negate().expr, -v))
            result = lia.check(assertions)

            if result.status == "sat":
                model = reconstruct_model(result.model, steps)
                for name in all_vars:
                    model.setdefault(name, 0)
                return SmtResult("sat", model=model, stats=stats)
            if result.status == "unknown":
                stats["stopped_by"] = result.reason or "bb-nodes"
                return SmtResult("unknown", stats=stats)
            core = result.conflict
            if not core:
                raise SolverError("theory conflict with empty core")
            if metrics.enabled:
                metrics.add("smt.theory_conflicts")
                metrics.observe("smt.core_size", len(core))
            # A theory lemma is valid independently of the active guards,
            # so the blocking clause is permanent: later rounds reuse it.
            self._remember_lemma(core)
            if not self.sat.add_clause([-tag for tag in core]):
                self._globally_unsat = True
                return SmtResult("unsat", stats=stats)

    # -- warm starts ---------------------------------------------------------

    _LEMMA_LIMIT = 128

    def _remember_lemma(self, core):
        if len(self._lemmas) >= self._LEMMA_LIMIT:
            return
        lemma = []
        for tag in core:
            atom = self.registry.atom_of(abs(tag))
            if atom is None:
                return
            lemma.append((atom, tag > 0))
        self._lemmas.append(tuple(lemma))

    def harvest_lemmas(self, limit=64):
        """Theory conflict cores learnt this session, as ``(atom,
        polarity)`` tuples — each an LIA-infeasible conjunction, i.e. a
        theory lemma valid in *any* formula over the same atoms.  The
        persistent store ships them across worker boots;
        :meth:`seed_lemmas` re-proves each before trusting it."""
        return list(self._lemmas[:limit])

    def seed_lemmas(self, lemmas, node_limit=2000):
        """Install previously harvested lemmas, re-proving each first.

        A stored lemma is a *claim* of LIA infeasibility: a bounded
        branch-and-bound check must reproduce the proof before the
        blocking clause is added.  A check that comes back "sat" means
        the certificate is corrupt (counted in ``rejected``); "unknown"
        from the bounded check is neither trusted nor blamed — the lemma
        is simply skipped.  Returns ``(installed, rejected)``.
        """
        installed = rejected = 0
        for lemma in lemmas:
            try:
                exprs = [(atom.expr if positive else atom.negate().expr)
                         for atom, positive in lemma]
            except Exception:
                rejected += 1
                continue
            checker = IntegerSolver(node_limit=node_limit)
            try:
                result = checker.check([(expr, i + 1)
                                        for i, expr in enumerate(exprs)])
            except Exception:
                rejected += 1
                continue
            if result.status == "unsat":
                clause = []
                for atom, positive in lemma:
                    lit = self.registry.literal(atom)
                    clause.append(-lit if positive else lit)
                # Valid lemma clauses can only conflict at level zero if
                # the session is already unsat from its own clauses.
                if not self.sat.add_clause(clause):
                    self._globally_unsat = True
                if len(self._lemmas) < self._LEMMA_LIMIT:
                    self._lemmas.append(tuple(lemma))
                installed += 1
            elif result.status == "sat":
                rejected += 1
        return installed, rejected
