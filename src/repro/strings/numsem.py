"""Real-parser numeric conversion semantics (``NumSemantics``).

The paper's toNum (Fig. 3) models bare decimal digit strings.  Real
converter traffic — strtoll/strtod-style C parsers, Goaldi's radix-2..36
digit forms, sign-prefixed overflow-checked parsing — adds sign prefixes,
leading whitespace, non-decimal radixes, exponent notation, and overflow
handling.  A :class:`NumSemantics` value is a declarative description of
one such converter; it drives three independent implementations that must
agree exactly:

* :meth:`NumSemantics.convert` — the concrete evaluator (ground truth for
  the validator and the enumerative oracle);
* the flatten rule in :mod:`repro.core.flatten` — a deterministic
  transducer (parser DFA with an accumulator) unrolled over the PFA chain,
  mirroring the BMC-style membership unrolling;
* the conversion PFA shape in :mod:`repro.core.pfa` that supplies
  unbounded leading whitespace/zeros.

All semantics parse the *full* string: trailing garbage yields
``error_value`` (strtol's prefix-parse-with-endptr is out of scope).
Whitespace means the space character only — the solver alphabet is
printable ASCII, which has no tab/newline.  The exponent (when enabled) is
a non-negative decimal exponent over radix 10 only, so the ``e``/``E``
marker can never collide with a radix digit.  Characters outside the
solver alphabet never occur in solver-produced words; :meth:`convert`
treats them as non-digits, which keeps the evaluator total.
"""

from dataclasses import dataclass

from repro.errors import SolverError, UnsupportedConstraint

OVERFLOW_MODES = ("bignum", "error", "saturate")

SPACE = " "
EXP_MARKERS = "eE"


@dataclass(frozen=True)
class NumSemantics:
    """One converter configuration.

    ``overflow`` is checked on the final value (equivalent to per-step
    checks for a full-string parse): ``bignum`` keeps exact integers,
    ``error`` yields ``error_value`` outside the ``bits``-wide two's
    complement range, ``saturate`` clamps to that range.  Exponents above
    ``exp_max`` denote values too large to materialize: zero mantissa still
    gives 0, otherwise ``saturate`` clamps by sign and both ``error`` and
    ``bignum`` yield ``error_value`` (a bignum backend would represent the
    value, but the flatten rule must stay linear, so the divergence is part
    of the declared semantics rather than an approximation).
    """

    name: str
    sign: bool = False
    whitespace: bool = False
    radix: int = 10
    exponent: bool = False
    overflow: str = "bignum"
    bits: int = 64
    error_value: int = -1
    exp_max: int = 8

    def __post_init__(self):
        if not 2 <= self.radix <= 36:
            raise SolverError("radix %r outside 2..36" % (self.radix,))
        if self.exponent and self.radix != 10:
            raise SolverError("exponent notation needs radix 10, got %r"
                              % (self.radix,))
        if self.overflow not in OVERFLOW_MODES:
            raise SolverError("unknown overflow mode %r" % (self.overflow,))
        if self.bits < 2:
            raise SolverError("bits must be >= 2, got %r" % (self.bits,))
        if self.exp_max < 0:
            raise SolverError("exp_max must be >= 0")

    # -- value range -----------------------------------------------------------

    @property
    def max_value(self):
        return (1 << (self.bits - 1)) - 1

    @property
    def min_value(self):
        return -(1 << (self.bits - 1))

    # -- digits ----------------------------------------------------------------

    def digit_value(self, char):
        """Value of *char* as a digit under this radix, or None.

        Radixes above 10 accept both letter cases, Goaldi-style.
        """
        if "0" <= char <= "9":
            value = ord(char) - 48
        elif "A" <= char <= "Z":
            value = ord(char) - 55
        elif "a" <= char <= "z":
            value = ord(char) - 87
        else:
            return None
        return value if value < self.radix else None

    def digit_chars(self):
        """Every character accepted as a digit, in a stable order."""
        out = [chr(48 + d) for d in range(min(self.radix, 10))]
        for d in range(10, self.radix):
            out.append(chr(55 + d))
        for d in range(10, self.radix):
            out.append(chr(87 + d))
        return out

    def extra_chars(self):
        """Non-digit characters this semantics gives meaning to."""
        out = []
        if self.whitespace:
            out.append(SPACE)
        if self.sign:
            out.extend("+-")
        if self.exponent:
            out.extend(EXP_MARKERS)
        return out

    def digit_segments(self, alphabet):
        """Contiguous code ranges of digit characters, with value offsets.

        Returns ``[(lo_code, hi_code, offset), ...]`` such that any
        character code ``u`` with ``lo <= u <= hi`` is a digit of value
        ``u + offset``.  Linear per segment, which is what keeps the
        transducer's accumulator update a linear formula.
        """
        segments = []
        for run in (
            [chr(48 + d) for d in range(min(self.radix, 10))],
            [chr(55 + d) for d in range(10, self.radix)],
            [chr(87 + d) for d in range(10, self.radix)],
        ):
            if not run:
                continue
            codes = [alphabet.code(c) for c in run]
            for lo, hi in zip(codes, codes[1:]):
                if hi != lo + 1:
                    raise SolverError(
                        "digit run %r is not contiguous in the alphabet"
                        % (run,))
            segments.append((codes[0], codes[-1],
                             self.digit_value(run[0]) - codes[0]))
        return segments

    # -- concrete conversion ---------------------------------------------------

    def convert(self, text):
        """Full-string parse of *text* under this semantics.

        This is a direct simulation of the transducer the flatten rule
        unrolls; the two must agree on every input or the differential
        harness flags the divergence.
        """
        i, n = 0, len(text)
        if self.whitespace:
            while i < n and text[i] == SPACE:
                i += 1
        negative = False
        if self.sign and i < n and text[i] in "+-":
            negative = text[i] == "-"
            i += 1
        start = i
        acc = 0
        while i < n:
            d = self.digit_value(text[i])
            if d is None:
                break
            acc = acc * self.radix + d
            i += 1
        if i == start:
            return self.error_value
        exp = 0
        if self.exponent and i < n and text[i] in EXP_MARKERS:
            j = i + 1
            digits_start = j
            while j < n and "0" <= text[j] <= "9":
                exp = exp * 10 + (ord(text[j]) - 48)
                j += 1
            if j == digits_start:
                return self.error_value
            i = j
        if i != n:
            return self.error_value
        if exp > self.exp_max:
            if acc == 0:
                return 0
            if self.overflow == "saturate":
                return self.min_value if negative else self.max_value
            return self.error_value
        value = acc * (10 ** exp)
        if negative:
            value = -value
        if self.overflow == "bignum":
            return value
        if value > self.max_value:
            return (self.max_value if self.overflow == "saturate"
                    else self.error_value)
        if value < self.min_value:
            return (self.min_value if self.overflow == "saturate"
                    else self.error_value)
        return value


# -- registry -------------------------------------------------------------------

STRTOL = NumSemantics("strtol", sign=True, whitespace=True,
                      overflow="saturate")
"""C strtoll: optional leading spaces and sign, saturating at int64."""

PG_INT = NumSemantics("pg_int", sign=True, overflow="error")
"""Sign-prefixed int64 parse that errors on overflow (purple-garden)."""

SCI = NumSemantics("sci", sign=True, exponent=True)
"""Signed decimal with a non-negative exponent suffix (Goaldi ``602e21``)."""

_FIXED = {sem.name: sem for sem in (STRTOL, PG_INT, SCI)}


def semantics_named(name):
    """Resolve a semantics name: a fixed registry entry or ``radixN``."""
    sem = _FIXED.get(name)
    if sem is not None:
        return sem
    if name.startswith("radix"):
        try:
            radix = int(name[len("radix"):])
        except ValueError:
            radix = -1
        if 2 <= radix <= 36:
            return NumSemantics(name, sign=True, radix=radix)
    raise UnsupportedConstraint("unknown toNum semantics %r" % (name,))


def standard_semantics():
    """The canonical variant set exercised by the fuzzer and benches."""
    return [STRTOL, PG_INT, semantics_named("radix16"), SCI]
