"""Concrete evaluation of string constraints under an interpretation.

This is the reproduction of the paper's *validator* (Section 9): given the
model returned by a solver, substitute it into every constraint and
re-evaluate.  It is also the ground-truth oracle used by the enumerative
baseline and by the property-based tests.
"""

from repro.alphabet import DEFAULT_ALPHABET
from repro.logic.formula import evaluate as eval_formula, variables_of
from repro.obs import current_tracer
from repro.strings.ast import (
    CharCode, CharNeq, Disjunction, IntConstraint, RegularConstraint, StrVar,
    ToNum, WordEquation,
)
from repro.errors import SolverError


def to_num_value(text):
    """The paper's toNum: decimal value of a digit string, else -1.

    ``toNum(a) = a`` for a digit, ``toNum(w·a) = 10*toNum(w) + a``, and
    ``toNum(w) = -1`` for any ``w`` outside ``[0-9]+`` (including the
    empty string).
    """
    if not text or any(c not in "0123456789" for c in text):
        return -1
    return int(text)


def _term_value(term, interp):
    parts = []
    for element in term:
        if isinstance(element, StrVar):
            parts.append(interp[element.name])
        else:
            parts.append(element)
    return "".join(parts)


def evaluate_constraint(constraint, interp, alphabet=DEFAULT_ALPHABET):
    """Truth value of one atomic constraint under *interp*.

    *interp* maps string-variable names to Python strings and integer
    variable names to ints.  Length variables are derived automatically.
    """
    if isinstance(constraint, WordEquation):
        return (_term_value(constraint.lhs, interp)
                == _term_value(constraint.rhs, interp))
    if isinstance(constraint, RegularConstraint):
        value = interp[constraint.var.name]
        return constraint.nfa.accepts(alphabet.encode_word(value))
    if isinstance(constraint, IntConstraint):
        assignment = {}
        for name in variables_of(constraint.formula):
            if name.startswith("|") and name.endswith("|"):
                assignment[name] = len(interp[name[1:-1]])
            else:
                assignment[name] = interp[name]
        return eval_formula(constraint.formula, assignment)
    if isinstance(constraint, ToNum):
        text = interp[constraint.var.name]
        if constraint.semantics is None:
            expected = to_num_value(text)
        else:
            expected = constraint.semantics.convert(text)
        return interp[constraint.result] == expected
    if isinstance(constraint, CharCode):
        value = interp[constraint.var.name]
        return len(value) == 1 and interp[constraint.result] == ord(value)
    if isinstance(constraint, Disjunction):
        return any(
            all(evaluate_constraint(c, interp, alphabet) for c in branch)
            for branch in constraint.branches)
    if isinstance(constraint, CharNeq):
        left = interp[constraint.left.name]
        right = interp[constraint.right.name]
        return len(left) <= 1 and len(right) <= 1 and left != right
    raise SolverError("cannot evaluate %r" % (constraint,))


def check_model(problem, interp, alphabet=DEFAULT_ALPHABET):
    """All constraints of *problem* hold under *interp* (missing vars fail)."""
    with current_tracer().span("eval.check_model") as span:
        interp = dict(interp)
        for v in problem.string_vars():
            if v.name not in interp:
                span.set(ok=False)
                return False
        for name in problem.int_vars():
            if name not in interp:
                span.set(ok=False)
                return False
        ok = all(evaluate_constraint(c, interp, alphabet) for c in problem)
        span.set(ok=ok)
        return ok


def failing_constraints(problem, interp, alphabet=DEFAULT_ALPHABET):
    """The constraints violated by *interp* (diagnostics)."""
    return [c for c in problem
            if not evaluate_constraint(c, interp, alphabet)]
