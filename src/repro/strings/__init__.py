"""String constraints: AST, high-level operation desugaring, evaluation.

The atomic constraint kinds follow Section 3 of the paper: word equations,
regular membership, linear integer constraints over integer variables and
string lengths, and string-number conversion ``n = toNum(x)``.  A
:class:`StringProblem` is a conjunction of atomic constraints;
:class:`Disjunction` carries the case splits total operation semantics
need, and :class:`NumSemantics` parameterizes real-parser conversion
variants.
"""

from repro.strings.ast import (
    StrVar, WordEquation, RegularConstraint, IntConstraint,
    ToNum, CharNeq, CharCode, Disjunction, StringProblem,
    length_var, str_len,
)
from repro.strings.eval import to_num_value, evaluate_constraint, check_model
from repro.strings.numsem import NumSemantics, semantics_named
from repro.strings.ops import ProblemBuilder

__all__ = [
    "StrVar", "WordEquation", "RegularConstraint", "IntConstraint",
    "ToNum", "CharNeq", "CharCode", "Disjunction", "StringProblem",
    "length_var", "str_len",
    "to_num_value", "evaluate_constraint", "check_model",
    "NumSemantics", "semantics_named",
    "ProblemBuilder",
]
