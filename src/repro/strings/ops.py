"""High-level string operations desugared to atomic constraints.

The paper's benchmarks use operations like ``charAt``, ``substr``,
``contains`` and disequality; all of them reduce to the four atomic
constraint kinds (Section 1 shows the standard ``charAt`` encoding).  The
:class:`ProblemBuilder` is the public construction API: it owns a
:class:`~repro.strings.ast.StringProblem`, hands out fresh variables, and
applies the standard encodings.
"""

from repro.alphabet import DEFAULT_ALPHABET
from repro.automata.nfa import NFA
from repro.automata.regex import regex_to_nfa
from repro.logic.formula import conj, disj, eq, ge, implies, le, ne
from repro.logic.terms import LinExpr, var as int_var
from repro.errors import SolverError
from repro.strings.ast import (
    CharCode, CharNeq, Disjunction, IntConstraint, RegularConstraint,
    StringProblem, StrVar, ToNum, WordEquation, str_len,
)
from repro.strings.numsem import semantics_named

NUMERAL_REGEX = "0|[1-9][0-9]*"
"""Canonical decimal numerals (no leading zeros) — the range of toStr."""


class ProblemBuilder:
    """Constructs a :class:`StringProblem` through high-level operations."""

    def __init__(self, alphabet=DEFAULT_ALPHABET):
        self.alphabet = alphabet
        self.problem = StringProblem()
        self._fresh = 0
        self._reserved = set()
        self.single_char_vars = set()

    # -- variables ------------------------------------------------------------

    def str_var(self, name):
        return StrVar(name)

    def _str_result(self, result, prefix):
        """Coerce a caller-supplied result into a StrVar.

        A bare name must become a variable here: left as a plain str it
        would read as a string *literal* inside the word equations the
        encodings build."""
        if result is None:
            return self.fresh_str(prefix)
        if isinstance(result, str):
            return StrVar(result)
        return result

    def reserve(self, names):
        """Mark *names* as taken so no fresh variable ever collides.

        Frontends introducing externally-named variables (the SMT-LIB
        converter's declared symbols) must reserve them: a script is
        free to declare ``_dp1``-style names that the desugaring
        encodings would otherwise mint themselves, silently fusing two
        unrelated variables into one.
        """
        self._reserved.update(names)

    def _fresh_name(self, prefix):
        while True:
            self._fresh += 1
            name = "%s%d" % (prefix, self._fresh)
            if name not in self._reserved:
                return name

    def fresh_str(self, prefix="_t"):
        return StrVar(self._fresh_name(prefix))

    def fresh_int(self, prefix="_n"):
        return self._fresh_name(prefix)

    # -- raw constraints ----------------------------------------------------------

    def require(self, constraint):
        self.problem.add(constraint)

    def require_int(self, formula):
        self.problem.add(IntConstraint(formula))

    def equal(self, lhs, rhs):
        self.problem.add(WordEquation(lhs, rhs))

    def member(self, variable, regex):
        self.problem.add(self._member_constraint(variable, regex))

    def not_member(self, variable, regex):
        self.problem.add(self._not_member_constraint(variable, regex))

    def _member_constraint(self, variable, regex):
        nfa = regex if isinstance(regex, NFA) \
            else regex_to_nfa(regex, self.alphabet)
        source = regex if isinstance(regex, str) else None
        return RegularConstraint(variable, nfa, source)

    def _not_member_constraint(self, variable, regex):
        nfa = regex if isinstance(regex, NFA) \
            else regex_to_nfa(regex, self.alphabet)
        complement = nfa.complement(self.alphabet.codes()).trim()
        source = "!(%s)" % regex if isinstance(regex, str) else None
        return RegularConstraint(variable, complement, source)

    # -- lengths ----------------------------------------------------------------------

    def length(self, term):
        """Length of a word term as a linear expression."""
        if isinstance(term, (StrVar, str)):
            term = (term,)
        total = LinExpr.of_const(0)
        for element in term:
            if isinstance(element, StrVar):
                total = total + str_len(element)
            else:
                total = total + len(element)
        return total

    # -- derived operations ----------------------------------------------------------

    def char_at(self, variable, index):
        """``charAt(x, i)``: fresh single-char variable c with x = a·c·b,
        |a| = i, |c| = 1 (the standard encoding from Section 1)."""
        index = LinExpr.coerce(index)
        prefix = self.fresh_str("_pre")
        c = self.fresh_str("_ch")
        suffix = self.fresh_str("_suf")
        self.equal((variable,), (prefix, c, suffix))
        self.require_int(conj(eq(str_len(prefix), index),
                              eq(str_len(c), 1)))
        self.single_char_vars.add(c)
        return c

    def substr(self, variable, start, count):
        """``substr(x, i, n)``: fresh variable for the slice."""
        start = LinExpr.coerce(start)
        count = LinExpr.coerce(count)
        prefix = self.fresh_str("_pre")
        piece = self.fresh_str("_sub")
        suffix = self.fresh_str("_suf")
        self.equal((variable,), (prefix, piece, suffix))
        self.require_int(conj(eq(str_len(prefix), start),
                              eq(str_len(piece), count)))
        return piece

    def prefix_of(self, prefix_term, variable):
        rest = self.fresh_str("_rest")
        self.equal((variable,), _concat(prefix_term, rest))

    def suffix_of(self, suffix_term, variable):
        rest = self.fresh_str("_rest")
        self.equal((variable,), _concat(rest, suffix_term))

    def contains(self, variable, needle_term):
        before = self.fresh_str("_bef")
        after = self.fresh_str("_aft")
        self.equal((variable,), _concat(before, needle_term, after))

    def to_num(self, variable, result=None):
        """``n = toNum(x)``; returns the integer variable name n."""
        result = result or self.fresh_int("_num")
        self.problem.add(ToNum(result, variable))
        return result

    def _pin_unused(self, branches, aux):
        """Branches extended so each pins to ``""`` every *aux* variable
        it doesn't mention.  The auxiliaries are existential don't-cares
        in the branches that omit them, so the union over branches
        projected onto the non-auxiliary variables is unchanged — but the
        length abstraction's branch hull over each ``|aux|`` becomes
        bounded, which keeps straight-line PFA hints available and the
        encodings fast to solve."""
        out = []
        for branch in branches:
            used = set()
            for c in branch:
                used |= c.string_vars()
            extended = list(branch)
            extended.extend(WordEquation((v,), ())
                            for v in aux if v not in used)
            out.append(extended)
        return out

    def to_num_sem(self, variable, semantics, result=None):
        """``n = toNum[sem](x)`` for a real-parser semantics variant.

        *semantics* is a :class:`~repro.strings.numsem.NumSemantics` or a
        registry name (``strtol``, ``pg_int``, ``radix16``, ``sci``...).
        Returns the integer variable name n.
        """
        if isinstance(semantics, str):
            semantics = semantics_named(semantics)
        result = result or self.fresh_int("_num")
        self.problem.add(ToNum(result, variable, semantics))
        return result

    def at_total(self, variable, index, result=None):
        """SMT-LIB ``str.at``: the character at *index*, or ``""`` when
        the index is out of range.  Total, unlike :meth:`char_at` (which
        asserts the in-range path condition).  Returns
        ``(result_var, aux)`` where *aux* names the branch-local fresh
        variables for witness construction.
        """
        index = LinExpr.coerce(index)
        result = self._str_result(result, "_at")
        prefix = self.fresh_str("_pre")
        suffix = self.fresh_str("_suf")
        in_range = (
            WordEquation((variable,), (prefix, result, suffix)),
            IntConstraint(conj(eq(str_len(prefix), index),
                               eq(str_len(result), 1))),
        )
        out_of_range = (
            WordEquation((result,), ()),
            IntConstraint(disj(le(index, -1),
                               ge(index, str_len(variable)))),
        )
        self.require(Disjunction(self._pin_unused(
            [in_range, out_of_range], (prefix, suffix))))
        self.single_char_vars.add(result)
        return result, {"prefix": prefix, "suffix": suffix}

    def index_of(self, variable, needle, start=0, result=None):
        """SMT-LIB ``str.indexof`` with a literal *needle* (any length),
        arbitrary *start*, and the total semantics: -1 when the needle is
        absent from the suffix or the start is out of range.  Returns
        ``(result_name, aux)``.
        """
        if not isinstance(needle, str):
            raise SolverError("index_of needs a literal needle")
        start = LinExpr.coerce(start)
        result = result or self.fresh_int("_idx")
        i = int_var(result)
        pattern = "".join(_regex_escape(c) for c in needle)
        p = self.fresh_str("_ipre")
        a = self.fresh_str("_ibef")
        b = self.fresh_str("_iaft")
        u = self.fresh_str("_ifst")
        q = self.fresh_str("_itail")
        # Present: x = p.a.needle.b with |p| = start and no occurrence of
        # the needle inside a.needle other than the final one — the
        # leftmost occurrence at or after start ends exactly at the end of
        # a.needle, so i = start + |a|.
        present = (
            WordEquation((variable,), (p, a, needle, b)),
            WordEquation((u,), (a, needle)),
            self._not_member_constraint(u, ".*%s.+" % pattern),
            IntConstraint(conj(ge(start, 0), eq(str_len(p), start),
                               eq(i, start + str_len(a)))),
        )
        absent = (
            WordEquation((variable,), (p, q)),
            self._not_member_constraint(q, ".*%s.*" % pattern),
            IntConstraint(conj(ge(start, 0), eq(str_len(p), start),
                               eq(i, -1))),
        )
        out_of_range = (
            IntConstraint(conj(disj(le(start, -1),
                                    ge(start, str_len(variable) + 1)),
                               eq(i, -1))),
        )
        self.require(Disjunction(self._pin_unused(
            [present, absent, out_of_range], (p, a, b, u, q))))
        return result, {"p": p, "a": a, "b": b, "u": u, "q": q}

    def replace(self, variable, needle, replacement, result=None):
        """SMT-LIB ``str.replace``: the leftmost occurrence of literal
        *needle* replaced by literal *replacement*; the string unchanged
        when the needle is absent.  Returns ``(result_var, aux)``.
        """
        if not isinstance(needle, str) or not isinstance(replacement, str):
            raise SolverError("replace needs literal needle/replacement")
        result = self._str_result(result, "_rep")
        if needle == "":
            # SMT-LIB: replacing the empty string prepends the replacement.
            self.equal((result,), _concat(replacement, variable))
            return result, {}
        pattern = "".join(_regex_escape(c) for c in needle)
        a = self.fresh_str("_rbef")
        b = self.fresh_str("_raft")
        u = self.fresh_str("_rfst")
        present = (
            WordEquation((variable,), (a, needle, b)),
            WordEquation((u,), (a, needle)),
            self._not_member_constraint(u, ".*%s.+" % pattern),
            WordEquation((result,), _concat(a, replacement, b)),
        )
        absent = (
            self._not_member_constraint(variable, ".*%s.*" % pattern),
            WordEquation((result,), (variable,)),
        )
        self.require(Disjunction(self._pin_unused(
            [present, absent], (a, b, u))))
        return result, {"a": a, "b": b, "u": u}

    def replace_all(self, variable, needle, replacement,
                    max_occurrences=8, result=None):
        """SMT-LIB ``str.replace_all`` for a literal non-overlapping
        *needle*, with every (leftmost-greedy) occurrence replaced.

        Domain restriction: the subject is modeled up to *max_occurrences*
        occurrences of the needle — strings with more occurrences are
        outside the encoded language (README documents this bound).
        Returns ``(result_var, aux)`` with the per-gap variables.
        """
        if not isinstance(needle, str) or not isinstance(replacement, str):
            raise SolverError("replace_all needs literal needle/replacement")
        result = self._str_result(result, "_rall")
        if needle == "":
            # SMT-LIB: replace_all with an empty pattern is the identity.
            self.equal((result,), (variable,))
            return result, {}
        pattern = "".join(_regex_escape(c) for c in needle)
        gaps = [self.fresh_str("_rg") for _ in range(max_occurrences + 1)]
        firsts = [self.fresh_str("_rf") for _ in range(max_occurrences)]
        branches = []
        for count in range(max_occurrences + 1):
            branch = []
            subject = []
            replaced = []
            for k in range(count):
                subject.extend((gaps[k], needle))
                replaced.extend((gaps[k], replacement))
                # Leftmost-greedy: no earlier occurrence inside each
                # gap.needle junction.
                branch.append(WordEquation((firsts[k],),
                                           (gaps[k], needle)))
                branch.append(self._not_member_constraint(
                    firsts[k], ".*%s.+" % pattern))
            subject.append(gaps[count])
            replaced.append(gaps[count])
            branch.append(self._not_member_constraint(
                gaps[count], ".*%s.*" % pattern))
            branch.append(WordEquation((variable,), tuple(subject)))
            branch.append(WordEquation((result,), tuple(replaced)))
            branches.append(branch)
        self.require(Disjunction(self._pin_unused(
            branches, tuple(gaps) + tuple(firsts))))
        return result, {"gaps": gaps, "firsts": firsts}

    def to_code(self, variable, result=None):
        """SMT-LIB ``str.to_code``: the code point of a length-1 string,
        -1 otherwise.  Returns the integer variable name."""
        result = result or self.fresh_int("_code")
        c = self.fresh_str("_cch")
        single = (
            WordEquation((variable,), (c,)),
            CharCode(result, c),
        )
        other = (
            IntConstraint(conj(ne(str_len(variable), 1),
                               eq(int_var(result), -1))),
        )
        self.require(Disjunction(self._pin_unused([single, other], (c,))))
        self.single_char_vars.add(c)
        return result, {"char": c}

    def from_code(self, code, result=None):
        """SMT-LIB ``str.from_code``: the one-character string of a code
        point, ``""`` out of range.

        Divergence from SMT-LIB (documented in README): code points
        outside the solver's printable-ASCII alphabet behave as invalid
        and yield ``""``, consistently across evaluator, flattening and
        the enumerative oracle.
        """
        if not isinstance(code, str):
            raise SolverError("from_code needs an integer variable name")
        result = self._str_result(result, "_fc")
        ords = [ord(ch) for ch in self.alphabet.chars()]
        valid = (
            CharCode(code, result),
        )
        invalid = (
            WordEquation((result,), ()),
            IntConstraint(disj(le(int_var(code), min(ords) - 1),
                               ge(int_var(code), max(ords) + 1))),
        )
        self.require(Disjunction([valid, invalid]))
        self.single_char_vars.add(result)
        return result

    def to_str(self, int_name, variable=None):
        """``x = toStr(n)``: canonical numeral of a non-negative integer.

        The paper treats toStr as sugar for toNum; we additionally pin the
        canonical form (no leading zeros) required by the JavaScript
        semantics the paper motivates (see DESIGN.md).  For a canonical
        numeral the length equals the digit count of the value, which we
        expose as implication ladders — redundant for the solver's
        semantics, load-bearing for the static length analysis.
        """
        variable = variable or self.fresh_str("_str")
        self.problem.add(ToNum(int_name, variable))
        n = int_var(int_name)
        self.require_int(ge(n, 0))
        self.member(variable, NUMERAL_REGEX)
        length = str_len(variable)
        for digits in range(1, 19):
            self.require_int(implies(le(n, 10 ** digits - 1),
                                     le(length, digits)))
            self.require_int(implies(ge(n, 10 ** (digits - 1)),
                                     ge(length, digits)))
        return variable

    def diseq(self, lhs, rhs):
        """Word-term disequality ``t1 != t2`` via the standard encoding:
        a common prefix followed by a differing (possibly empty) character.
        Returns the encoding's fresh variables ``(p, c1, c2, s1, s2)`` so
        callers constructing witnesses can assign them.
        """
        p = self.fresh_str("_dp")
        c1, c2 = self.fresh_str("_dc"), self.fresh_str("_dc")
        s1, s2 = self.fresh_str("_ds"), self.fresh_str("_ds")
        self.equal(lhs, (p, c1, s1))
        self.equal(rhs, (p, c2, s2))
        self.require_int(conj(
            le(str_len(c1), 1), le(str_len(c2), 1),
            implies(eq(str_len(c1), 0), eq(str_len(s1), 0)),
            implies(eq(str_len(c2), 0), eq(str_len(s2), 0))))
        self.problem.add(CharNeq(c1, c2))
        self.single_char_vars.add(c1)
        self.single_char_vars.add(c2)
        return p, c1, c2, s1, s2

    def index_of_char(self, variable, char, result=None):
        """``i = indexOf(x, c)`` for a single character *char*, with the
        first-occurrence semantics: x = a . c . b where a avoids c.
        The encoding asserts the character occurs (the common symbolic-
        execution path condition); the caller handles the absent case.
        Returns the integer variable holding the index."""
        if len(char) != 1:
            raise SolverError("index_of_char needs a single character")
        result = result or self.fresh_int("_idx")
        before = self.fresh_str("_ibef")
        after = self.fresh_str("_iaft")
        self.equal((variable,), (before, char, after))
        self.member(before, "[^%s]*" % _regex_escape(char))
        self.require_int(eq(int_var(result), str_len(before)))
        return result

    def split_fixed(self, variable, separator, count):
        """``split(x, sep)`` with a known field count (the shape symbolic
        executors produce after a loop over the fields).  *separator* must
        be a single character; each returned field avoids it, which pins
        the exact split.  The paper lists ``split`` as future work; the
        fixed-arity case reduces to the core fragment."""
        if len(separator) != 1:
            raise SolverError("split_fixed needs a single-char separator")
        if count < 1:
            raise SolverError("split_fixed needs at least one field")
        fields = [self.fresh_str("_fld") for _ in range(count)]
        avoid = "[^%s]*" % _regex_escape(separator)
        term = []
        for i, field in enumerate(fields):
            self.member(field, avoid)
            if i:
                term.append(separator)
            term.append(field)
        self.equal((variable,), tuple(term))
        return fields

    def to_num_signed(self, variable, result=None):
        """JavaScript-style signed conversion for integer strings:
        x = sign . magnitude with sign in ("-")?, n = +-toNum(magnitude).
        Returns the integer variable holding the signed value.  Only
        well-formed (sign + digits) inputs are covered — the NaN case of
        signed strings is out of the paper's fragment."""
        result = result or self.fresh_int("_snum")
        sign = self.fresh_str("_sign")
        magnitude = self.fresh_str("_mag")
        self.member(sign, "-?")
        self.member(magnitude, "[0-9]+")
        self.equal((variable,), (sign, magnitude))
        m = self.to_num(magnitude)
        self.require_int(disj(
            conj(eq(str_len(sign), 0), eq(int_var(result), int_var(m))),
            conj(eq(str_len(sign), 1),
                 eq(int_var(result), -int_var(m)))))
        return result

    def ite_int(self, condition, then_expr, else_expr, result=None):
        """``r = ite(b, e, e')`` over integers, as a linear disjunction."""
        result = result or self.fresh_int("_ite")
        r = int_var(result)
        self.require_int(disj(
            conj(condition, eq(r, then_expr)),
            conj(_negate(condition), eq(r, else_expr))))
        return result


def _regex_escape(char):
    return "\\" + char if char in "()[]|*+?{}.\\^-" else char


def _concat(*terms):
    out = []
    for t in terms:
        if isinstance(t, (StrVar, str)):
            out.append(t)
        else:
            out.extend(t)
    return tuple(out)


def _negate(formula):
    from repro.logic.formula import neg, nnf
    return nnf(neg(formula))
