"""High-level string operations desugared to atomic constraints.

The paper's benchmarks use operations like ``charAt``, ``substr``,
``contains`` and disequality; all of them reduce to the four atomic
constraint kinds (Section 1 shows the standard ``charAt`` encoding).  The
:class:`ProblemBuilder` is the public construction API: it owns a
:class:`~repro.strings.ast.StringProblem`, hands out fresh variables, and
applies the standard encodings.
"""

from repro.alphabet import DEFAULT_ALPHABET
from repro.automata.nfa import NFA
from repro.automata.regex import regex_to_nfa
from repro.logic.formula import conj, disj, eq, ge, implies, le
from repro.logic.terms import LinExpr, var as int_var
from repro.errors import SolverError
from repro.strings.ast import (
    CharNeq, IntConstraint, RegularConstraint, StringProblem, StrVar,
    ToNum, WordEquation, str_len,
)

NUMERAL_REGEX = "0|[1-9][0-9]*"
"""Canonical decimal numerals (no leading zeros) — the range of toStr."""


class ProblemBuilder:
    """Constructs a :class:`StringProblem` through high-level operations."""

    def __init__(self, alphabet=DEFAULT_ALPHABET):
        self.alphabet = alphabet
        self.problem = StringProblem()
        self._fresh = 0
        self._reserved = set()
        self.single_char_vars = set()

    # -- variables ------------------------------------------------------------

    def str_var(self, name):
        return StrVar(name)

    def reserve(self, names):
        """Mark *names* as taken so no fresh variable ever collides.

        Frontends introducing externally-named variables (the SMT-LIB
        converter's declared symbols) must reserve them: a script is
        free to declare ``_dp1``-style names that the desugaring
        encodings would otherwise mint themselves, silently fusing two
        unrelated variables into one.
        """
        self._reserved.update(names)

    def _fresh_name(self, prefix):
        while True:
            self._fresh += 1
            name = "%s%d" % (prefix, self._fresh)
            if name not in self._reserved:
                return name

    def fresh_str(self, prefix="_t"):
        return StrVar(self._fresh_name(prefix))

    def fresh_int(self, prefix="_n"):
        return self._fresh_name(prefix)

    # -- raw constraints ----------------------------------------------------------

    def require(self, constraint):
        self.problem.add(constraint)

    def require_int(self, formula):
        self.problem.add(IntConstraint(formula))

    def equal(self, lhs, rhs):
        self.problem.add(WordEquation(lhs, rhs))

    def member(self, variable, regex):
        nfa = regex if isinstance(regex, NFA) \
            else regex_to_nfa(regex, self.alphabet)
        source = regex if isinstance(regex, str) else None
        self.problem.add(RegularConstraint(variable, nfa, source))

    def not_member(self, variable, regex):
        nfa = regex if isinstance(regex, NFA) \
            else regex_to_nfa(regex, self.alphabet)
        complement = nfa.complement(self.alphabet.codes()).trim()
        source = "!(%s)" % regex if isinstance(regex, str) else None
        self.problem.add(RegularConstraint(variable, complement, source))

    # -- lengths ----------------------------------------------------------------------

    def length(self, term):
        """Length of a word term as a linear expression."""
        if isinstance(term, (StrVar, str)):
            term = (term,)
        total = LinExpr.of_const(0)
        for element in term:
            if isinstance(element, StrVar):
                total = total + str_len(element)
            else:
                total = total + len(element)
        return total

    # -- derived operations ----------------------------------------------------------

    def char_at(self, variable, index):
        """``charAt(x, i)``: fresh single-char variable c with x = a·c·b,
        |a| = i, |c| = 1 (the standard encoding from Section 1)."""
        index = LinExpr.coerce(index)
        prefix = self.fresh_str("_pre")
        c = self.fresh_str("_ch")
        suffix = self.fresh_str("_suf")
        self.equal((variable,), (prefix, c, suffix))
        self.require_int(conj(eq(str_len(prefix), index),
                              eq(str_len(c), 1)))
        self.single_char_vars.add(c)
        return c

    def substr(self, variable, start, count):
        """``substr(x, i, n)``: fresh variable for the slice."""
        start = LinExpr.coerce(start)
        count = LinExpr.coerce(count)
        prefix = self.fresh_str("_pre")
        piece = self.fresh_str("_sub")
        suffix = self.fresh_str("_suf")
        self.equal((variable,), (prefix, piece, suffix))
        self.require_int(conj(eq(str_len(prefix), start),
                              eq(str_len(piece), count)))
        return piece

    def prefix_of(self, prefix_term, variable):
        rest = self.fresh_str("_rest")
        self.equal((variable,), _concat(prefix_term, rest))

    def suffix_of(self, suffix_term, variable):
        rest = self.fresh_str("_rest")
        self.equal((variable,), _concat(rest, suffix_term))

    def contains(self, variable, needle_term):
        before = self.fresh_str("_bef")
        after = self.fresh_str("_aft")
        self.equal((variable,), _concat(before, needle_term, after))

    def to_num(self, variable, result=None):
        """``n = toNum(x)``; returns the integer variable name n."""
        result = result or self.fresh_int("_num")
        self.problem.add(ToNum(result, variable))
        return result

    def to_str(self, int_name, variable=None):
        """``x = toStr(n)``: canonical numeral of a non-negative integer.

        The paper treats toStr as sugar for toNum; we additionally pin the
        canonical form (no leading zeros) required by the JavaScript
        semantics the paper motivates (see DESIGN.md).  For a canonical
        numeral the length equals the digit count of the value, which we
        expose as implication ladders — redundant for the solver's
        semantics, load-bearing for the static length analysis.
        """
        variable = variable or self.fresh_str("_str")
        self.problem.add(ToNum(int_name, variable))
        n = int_var(int_name)
        self.require_int(ge(n, 0))
        self.member(variable, NUMERAL_REGEX)
        length = str_len(variable)
        for digits in range(1, 19):
            self.require_int(implies(le(n, 10 ** digits - 1),
                                     le(length, digits)))
            self.require_int(implies(ge(n, 10 ** (digits - 1)),
                                     ge(length, digits)))
        return variable

    def diseq(self, lhs, rhs):
        """Word-term disequality ``t1 != t2`` via the standard encoding:
        a common prefix followed by a differing (possibly empty) character.
        Returns the encoding's fresh variables ``(p, c1, c2, s1, s2)`` so
        callers constructing witnesses can assign them.
        """
        p = self.fresh_str("_dp")
        c1, c2 = self.fresh_str("_dc"), self.fresh_str("_dc")
        s1, s2 = self.fresh_str("_ds"), self.fresh_str("_ds")
        self.equal(lhs, (p, c1, s1))
        self.equal(rhs, (p, c2, s2))
        self.require_int(conj(
            le(str_len(c1), 1), le(str_len(c2), 1),
            implies(eq(str_len(c1), 0), eq(str_len(s1), 0)),
            implies(eq(str_len(c2), 0), eq(str_len(s2), 0))))
        self.problem.add(CharNeq(c1, c2))
        self.single_char_vars.add(c1)
        self.single_char_vars.add(c2)
        return p, c1, c2, s1, s2

    def index_of_char(self, variable, char, result=None):
        """``i = indexOf(x, c)`` for a single character *char*, with the
        first-occurrence semantics: x = a . c . b where a avoids c.
        The encoding asserts the character occurs (the common symbolic-
        execution path condition); the caller handles the absent case.
        Returns the integer variable holding the index."""
        if len(char) != 1:
            raise SolverError("index_of_char needs a single character")
        result = result or self.fresh_int("_idx")
        before = self.fresh_str("_ibef")
        after = self.fresh_str("_iaft")
        self.equal((variable,), (before, char, after))
        self.member(before, "[^%s]*" % _regex_escape(char))
        self.require_int(eq(int_var(result), str_len(before)))
        return result

    def split_fixed(self, variable, separator, count):
        """``split(x, sep)`` with a known field count (the shape symbolic
        executors produce after a loop over the fields).  *separator* must
        be a single character; each returned field avoids it, which pins
        the exact split.  The paper lists ``split`` as future work; the
        fixed-arity case reduces to the core fragment."""
        if len(separator) != 1:
            raise SolverError("split_fixed needs a single-char separator")
        if count < 1:
            raise SolverError("split_fixed needs at least one field")
        fields = [self.fresh_str("_fld") for _ in range(count)]
        avoid = "[^%s]*" % _regex_escape(separator)
        term = []
        for i, field in enumerate(fields):
            self.member(field, avoid)
            if i:
                term.append(separator)
            term.append(field)
        self.equal((variable,), tuple(term))
        return fields

    def to_num_signed(self, variable, result=None):
        """JavaScript-style signed conversion for integer strings:
        x = sign . magnitude with sign in ("-")?, n = +-toNum(magnitude).
        Returns the integer variable holding the signed value.  Only
        well-formed (sign + digits) inputs are covered — the NaN case of
        signed strings is out of the paper's fragment."""
        result = result or self.fresh_int("_snum")
        sign = self.fresh_str("_sign")
        magnitude = self.fresh_str("_mag")
        self.member(sign, "-?")
        self.member(magnitude, "[0-9]+")
        self.equal((variable,), (sign, magnitude))
        m = self.to_num(magnitude)
        self.require_int(disj(
            conj(eq(str_len(sign), 0), eq(int_var(result), int_var(m))),
            conj(eq(str_len(sign), 1),
                 eq(int_var(result), -int_var(m)))))
        return result

    def ite_int(self, condition, then_expr, else_expr, result=None):
        """``r = ite(b, e, e')`` over integers, as a linear disjunction."""
        result = result or self.fresh_int("_ite")
        r = int_var(result)
        self.require_int(disj(
            conj(condition, eq(r, then_expr)),
            conj(_negate(condition), eq(r, else_expr))))
        return result


def _regex_escape(char):
    return "\\" + char if char in "()[]|*+?{}.\\^-" else char


def _concat(*terms):
    out = []
    for t in terms:
        if isinstance(t, (StrVar, str)):
            out.append(t)
        else:
            out.extend(t)
    return tuple(out)


def _negate(formula):
    from repro.logic.formula import neg, nnf
    return nnf(neg(formula))
