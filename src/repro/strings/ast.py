"""Abstract syntax of string constraints (paper Section 3).

A *word term* is a tuple whose elements are :class:`StrVar` objects or
plain Python strings (literals).  The four atomic constraint kinds are

* :class:`WordEquation` — ``t1 = t2`` for word terms ``t1``, ``t2``;
* :class:`RegularConstraint` — ``x in L(A)``;
* :class:`IntConstraint` — a linear-arithmetic formula over integer
  variables and string lengths (lengths appear as the reserved variable
  names produced by :func:`length_var`);
* :class:`ToNum` — ``n = toNum(x)`` with ``n`` an integer variable.

:class:`CharNeq` is an internal fifth kind produced when desugaring
disequalities: two *single-character-or-empty* variables denote different
strings.  The flattening gives such variables one-transition PFAs, making
the constraint a single linear disequality.
"""

from repro.logic.formula import Formula
from repro.logic.terms import var as int_var
from repro.errors import SolverError


class StrVar:
    """A string variable."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __eq__(self, other):
        return isinstance(other, StrVar) and self.name == other.name

    def __hash__(self):
        return hash(("strvar", self.name))

    def __repr__(self):
        return self.name


def length_var(name_or_var):
    """Reserved integer-variable name carrying the length of a string var."""
    name = name_or_var.name if isinstance(name_or_var, StrVar) else name_or_var
    return "|%s|" % name


def str_len(name_or_var):
    """Length of a string variable as a linear expression."""
    return int_var(length_var(name_or_var))


def _coerce_term(term):
    """Normalize a word term to a tuple of StrVar | str elements."""
    if isinstance(term, (StrVar, str)):
        term = (term,)
    out = []
    for element in term:
        if isinstance(element, StrVar):
            out.append(element)
        elif isinstance(element, str):
            if element:
                out.append(element)
        else:
            raise SolverError("bad word-term element %r" % (element,))
    return tuple(out)


class Constraint:
    """Base class of atomic string constraints."""

    __slots__ = ()

    def string_vars(self):
        raise NotImplementedError

    def int_vars(self):
        return set()


class WordEquation(Constraint):
    """``lhs = rhs`` over word terms."""

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs, rhs):
        self.lhs = _coerce_term(lhs)
        self.rhs = _coerce_term(rhs)

    def string_vars(self):
        return {e for e in self.lhs + self.rhs if isinstance(e, StrVar)}

    def __repr__(self):
        def side(term):
            return "".join(repr(e) if isinstance(e, StrVar) else '"%s"' % e
                           for e in term) or '""'
        return "%s = %s" % (side(self.lhs), side(self.rhs))


class RegularConstraint(Constraint):
    """``var in L(nfa)``; *source* keeps the regex text for display.

    ``compact_nfa`` caches a minimized equivalent computed lazily by the
    flattener — synchronization products scale with automaton size, so the
    investment pays back every refinement round.
    """

    __slots__ = ("var", "nfa", "source", "_compact", "_dfa")

    def __init__(self, variable, nfa, source=None):
        self.var = variable
        self.nfa = nfa
        self.source = source
        self._compact = None
        self._dfa = None

    def compact_nfa(self):
        """Trimmed epsilon-free form (cached across refinement rounds)."""
        if self._compact is None:
            self._compact = self.nfa.without_epsilon().trim()
        return self._compact

    def dfa(self, max_states=160):
        """Minimized deterministic form, or None if it would be too big.

        Used by the unrolled (BMC-style) membership flattening, which
        needs a deterministic transition function.  Cached across
        refinement rounds; ``False`` is stored internally for "too big".
        """
        if self._dfa is None:
            base = self.compact_nfa()
            result = False
            if 0 < base.num_states <= max_states:
                try:
                    candidate = base.minimize(sorted(base.alphabet()))
                    if candidate.num_states <= max_states:
                        result = candidate
                except Exception:
                    result = False
            self._dfa = result
        return self._dfa if self._dfa is not False else None

    def string_vars(self):
        return {self.var}

    def __repr__(self):
        return "%r in /%s/" % (self.var, self.source or "<nfa>")


class IntConstraint(Constraint):
    """A linear formula over integer variables and string lengths."""

    __slots__ = ("formula",)

    def __init__(self, formula):
        if not isinstance(formula, Formula):
            raise SolverError("IntConstraint needs a logic formula")
        self.formula = formula

    def string_vars(self):
        from repro.logic.formula import variables_of
        out = set()
        for name in variables_of(self.formula):
            if name.startswith("|") and name.endswith("|"):
                out.add(StrVar(name[1:-1]))
        return out

    def int_vars(self):
        from repro.logic.formula import variables_of
        return {name for name in variables_of(self.formula)
                if not (name.startswith("|") and name.endswith("|"))}

    def __repr__(self):
        return repr(self.formula)


class ToNum(Constraint):
    """``result = toNum(var)`` with *result* an integer variable name.

    ``semantics`` is None for the paper's base toNum (decimal digit
    strings, everything else -1) or a
    :class:`~repro.strings.numsem.NumSemantics` describing a real-parser
    variant (sign/whitespace/radix/exponent/overflow).
    """

    __slots__ = ("result", "var", "semantics")

    def __init__(self, result, variable, semantics=None):
        self.result = result
        self.var = variable
        self.semantics = semantics

    def string_vars(self):
        return {self.var}

    def int_vars(self):
        return {self.result}

    def __repr__(self):
        if self.semantics is not None:
            return "%s = toNum[%s](%r)" % (self.result, self.semantics.name,
                                           self.var)
        return "%s = toNum(%r)" % (self.result, self.var)


class CharNeq(Constraint):
    """Two single-character-or-empty variables hold different strings."""

    __slots__ = ("left", "right")

    def __init__(self, left, right):
        self.left = left
        self.right = right

    def string_vars(self):
        return {self.left, self.right}

    def __repr__(self):
        return "%r !=c %r" % (self.left, self.right)


class CharCode(Constraint):
    """``result`` is the code point of the single character held by *var*.

    Only satisfied when ``|var| = 1``; the total SMT-LIB semantics of
    ``str.to_code`` (length != 1 yields -1) is expressed by wrapping this
    in a :class:`Disjunction` with the out-of-range branches.  ``result``
    carries the Unicode code point (``ord``), not the solver-internal
    alphabet code; the flattening maps between the two.
    """

    __slots__ = ("result", "var")

    def __init__(self, result, variable):
        self.result = result
        self.var = variable

    def string_vars(self):
        return {self.var}

    def int_vars(self):
        return {self.result}

    def __repr__(self):
        return "%s = code(%r)" % (self.result, self.var)


class Disjunction(Constraint):
    """At least one *branch* — a conjunction of atomic constraints — holds.

    The solver's input language is otherwise purely conjunctive; this kind
    carries the case splits that total operation semantics need
    (``str.at`` out of range, ``str.indexof`` absent, ...).  Soundness of
    the flattening is structural: every branch constraint flattens to a
    formula over the *same* global per-variable PFA character variables,
    so the disjunction of the flattened branch conjunctions is exactly the
    flattening of the disjunction.
    """

    __slots__ = ("branches",)

    def __init__(self, branches):
        coerced = []
        for branch in branches:
            branch = tuple(branch)
            for c in branch:
                if not isinstance(c, Constraint):
                    raise SolverError(
                        "Disjunction branch element %r is not a constraint"
                        % (c,))
            coerced.append(branch)
        if not coerced:
            raise SolverError("Disjunction needs at least one branch")
        self.branches = tuple(coerced)

    def string_vars(self):
        out = set()
        for branch in self.branches:
            for c in branch:
                out |= c.string_vars()
        return out

    def int_vars(self):
        out = set()
        for branch in self.branches:
            for c in branch:
                out |= c.int_vars()
        return out

    def __repr__(self):
        return "(or %s)" % " | ".join(
            "[%s]" % "; ".join(map(repr, branch))
            for branch in self.branches)


class StringProblem:
    """A conjunction of atomic string constraints."""

    def __init__(self, constraints=None):
        self.constraints = list(constraints or [])

    def add(self, constraint):
        self.constraints.append(constraint)
        return self

    def extend(self, constraints):
        self.constraints.extend(constraints)
        return self

    def string_vars(self):
        out = set()
        for c in self.constraints:
            out |= c.string_vars()
        return out

    def int_vars(self):
        out = set()
        for c in self.constraints:
            out |= c.int_vars()
        return out

    def by_kind(self, kind):
        return [c for c in self.constraints if isinstance(c, kind)]

    def __iter__(self):
        return iter(self.constraints)

    def __len__(self):
        return len(self.constraints)

    def __repr__(self):
        return "StringProblem(%s)" % "; ".join(map(repr, self.constraints))
