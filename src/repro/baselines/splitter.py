"""DPLL-style word-equation splitting baseline.

This implements the strategy of the DPLL(T) string solvers the paper
compares against (CVC4, Z3's seq theory): recursively case-split word
equations with Levi's lemma, propagate memberships through automata
derivatives, keep length/integer constraints as an LIA side condition, and
concretize at the leaves.

String-number conversion gets the historically weak treatment those
solvers exhibited in 2020: conversions are relaxed to length/value
brackets during the search and only checked concretely at leaves, with a
bounded number of leaf repair attempts — so conversion-heavy instances
routinely exhaust the budget, reproducing the Table 2/3 behaviour.

UNSAT is reported only when every branch closed without hitting a depth or
resource bound ("incomplete flag" discipline, like Z3's)."""

from repro.alphabet import DEFAULT_ALPHABET
from repro.config import Deadline
from repro.core.overapprox import tonum_relaxation
from repro.core.solver import SolveResult
from repro.logic.formula import conj, eq, ge, le, ne
from repro.logic.terms import var as int_var
from repro.smt import solve_formula
from repro.strings.ast import (
    CharNeq, IntConstraint, RegularConstraint, StrVar, ToNum, WordEquation,
    length_var, str_len,
)
from repro.strings.eval import check_model, to_num_value


class _State:
    """One node of the splitting search tree."""

    __slots__ = ("equations", "memberships", "int_parts", "tonums",
                 "charneqs", "bindings")

    def __init__(self, equations, memberships, int_parts, tonums, charneqs,
                 bindings):
        self.equations = equations          # list of (lhs tuple, rhs tuple)
        self.memberships = memberships      # var name -> NFA
        self.int_parts = int_parts          # list of logic formulas
        self.tonums = tonums                # list of (int name, var name)
        self.charneqs = charneqs            # list of (var name, var name)
        self.bindings = bindings            # var name -> term (items tuple)

    def copy(self):
        return _State(list(self.equations), dict(self.memberships),
                      list(self.int_parts), list(self.tonums),
                      list(self.charneqs), dict(self.bindings))


class SplittingSolver:
    """Levi's-lemma case splitting with LIA length reasoning."""

    def __init__(self, alphabet=DEFAULT_ALPHABET, max_depth=28,
                 max_leaf_attempts=6, max_fresh=400):
        self.alphabet = alphabet
        self.max_depth = max_depth
        self.max_leaf_attempts = max_leaf_attempts
        self.max_fresh = max_fresh

    def solve(self, problem, timeout=None):
        deadline = Deadline(timeout)
        state = self._initial_state(problem)
        if state is None:
            return SolveResult("unsat")
        self._fresh = 0
        self._incomplete = False
        self._problem = problem
        outcome = self._split(state, 0, deadline)
        if outcome is not None:
            return outcome
        if self._incomplete or deadline.expired():
            return SolveResult("unknown")
        return SolveResult("unsat")

    # -- setup ------------------------------------------------------------------

    def _initial_state(self, problem):
        equations = []
        memberships = {}
        int_parts = []
        tonums = []
        charneqs = []
        for constraint in problem:
            if isinstance(constraint, WordEquation):
                equations.append((self._explode(constraint.lhs),
                                  self._explode(constraint.rhs)))
            elif isinstance(constraint, RegularConstraint):
                name = constraint.var.name
                if name in memberships:
                    memberships[name] = memberships[name].intersect(
                        constraint.nfa)
                else:
                    memberships[name] = constraint.nfa.without_epsilon()
                if memberships[name].is_empty():
                    return None
            elif isinstance(constraint, IntConstraint):
                int_parts.append(constraint.formula)
            elif isinstance(constraint, ToNum):
                tonums.append((constraint.result, constraint.var.name))
                int_parts.append(tonum_relaxation(constraint))
            elif isinstance(constraint, CharNeq):
                charneqs.append((constraint.left.name,
                                 constraint.right.name))
                int_parts.append(le(str_len(constraint.left), 1))
                int_parts.append(le(str_len(constraint.right), 1))
        for v in problem.string_vars():
            int_parts.append(ge(str_len(v), 0))
        return _State(equations, memberships, int_parts, tonums, charneqs,
                      {})

    def _explode(self, term):
        """Literals become single-character items."""
        items = []
        for element in term:
            if isinstance(element, StrVar):
                items.append(element)
            else:
                items.extend(element)
        return tuple(items)

    # -- splitting search ----------------------------------------------------------

    def _split(self, state, depth, deadline):
        if deadline.expired():
            self._incomplete = True
            return None
        if depth > self.max_depth or self._fresh > self.max_fresh:
            self._incomplete = True
            return None
        state = self._simplify(state)
        if state is None:
            return None         # branch closed
        equation = self._pick_equation(state)
        if equation is None:
            return self._leaf(state, deadline)
        lhs, rhs = equation
        branches = self._branches(state, lhs, rhs)
        if branches is None:
            self._incomplete = True
            return None
        for branch in branches:
            outcome = self._split(branch, depth + 1, deadline)
            if outcome is not None:
                return outcome
        return None

    def _simplify(self, state):
        """Strip matched prefixes/suffixes; close on direct contradiction.

        Restarts the scan after every state mutation, since substitutions
        rewrite all equations at once.
        """
        progress = True
        while progress:
            progress = False
            for idx, (lhs, rhs) in enumerate(state.equations):
                stripped_lhs, stripped_rhs = self._strip(lhs, rhs)
                if stripped_lhs is None:
                    return None
                if not stripped_lhs and not stripped_rhs:
                    del state.equations[idx]
                    progress = True
                    break
                if not stripped_lhs or not stripped_rhs:
                    # One side empty: every variable on the other side is
                    # empty and no literal may remain.
                    other = stripped_lhs or stripped_rhs
                    if any(not isinstance(e, StrVar) for e in other):
                        return None
                    del state.equations[idx]
                    for name in {e.name for e in other}:
                        state = self._substitute(state, name, ())
                        if state is None:
                            return None
                    progress = True
                    break
                if (stripped_lhs, stripped_rhs) != (lhs, rhs):
                    state.equations[idx] = (stripped_lhs, stripped_rhs)
                    progress = True
        return state

    @staticmethod
    def _strip(lhs, rhs):
        """Drop equal items from both ends; None on character clash."""
        i = 0
        while i < len(lhs) and i < len(rhs) and lhs[i] == rhs[i]:
            i += 1
        lhs, rhs = lhs[i:], rhs[i:]
        if lhs and rhs and not isinstance(lhs[0], StrVar) \
                and not isinstance(rhs[0], StrVar):
            return None, None
        j = 0
        while (j < len(lhs) and j < len(rhs)
               and lhs[len(lhs) - 1 - j] == rhs[len(rhs) - 1 - j]):
            j += 1
        if j:
            lhs, rhs = lhs[:len(lhs) - j], rhs[:len(rhs) - j]
        if lhs and rhs and not isinstance(lhs[-1], StrVar) \
                and not isinstance(rhs[-1], StrVar):
            return None, None
        return lhs, rhs

    @staticmethod
    def _pick_equation(state):
        best = None
        for lhs, rhs in state.equations:
            if lhs or rhs:
                size = len(lhs) + len(rhs)
                if best is None or size < best[0]:
                    best = (size, (lhs, rhs))
        return best[1] if best else None

    def _branches(self, state, lhs, rhs):
        """Levi's lemma case split on the first items."""
        u = lhs[0] if lhs else None
        v = rhs[0] if rhs else None
        if not isinstance(u, StrVar) and not isinstance(v, StrVar):
            return []           # two literals: _strip already handled clash
        if isinstance(u, StrVar) and not isinstance(v, StrVar):
            return self._var_vs_char(state, u, v)
        if isinstance(v, StrVar) and not isinstance(u, StrVar):
            return self._var_vs_char(state, v, u)
        # var vs var
        x, y = u, v
        branches = []
        for builder in (lambda s: self._substitute(s, x.name, (y,)),
                        lambda s: self._sub_with_fresh(s, x.name, (y,), x),
                        lambda s: self._sub_with_fresh(s, y.name, (x,), y)):
            out = builder(state.copy())
            if out is not None:
                branches.append(out)
        return branches

    def _var_vs_char(self, state, x, char):
        branches = []
        empty = self._substitute(state.copy(), x.name, ())
        if empty is not None:
            branches.append(empty)
        starts = self._sub_with_fresh(state.copy(), x.name, (char,), x)
        if starts is not None:
            branches.append(starts)
        return branches

    def _sub_with_fresh(self, state, name, prefix_items, original):
        """x := prefix . x' with a fresh tail variable."""
        self._fresh += 1
        if self._fresh > self.max_fresh:
            self._incomplete = True
            return None
        tail = StrVar("%s'%d" % (name.split("'")[0], self._fresh))
        state.int_parts.append(ge(str_len(tail), 0))
        return self._substitute(state, name, tuple(prefix_items) + (tail,))

    def _substitute(self, state, name, replacement):
        """Apply x := replacement across the whole state; None to close."""
        target = StrVar(name)

        def rewrite(term):
            out = []
            for element in term:
                if element == target:
                    out.extend(replacement)
                else:
                    out.append(element)
            return tuple(out)

        state.equations = [(rewrite(l), rewrite(r))
                           for l, r in state.equations]
        state.bindings[name] = replacement

        # Length bookkeeping: |x| = sum of replacement lengths.
        total = None
        for element in replacement:
            piece = str_len(element.name) if isinstance(element, StrVar) \
                else 1
            total = piece if total is None else total + piece
        state.int_parts.append(eq(str_len(name),
                                  0 if total is None else total))

        # Membership propagation for the shapes we handle symbolically.
        nfa = state.memberships.pop(name, None)
        if nfa is not None:
            if len(replacement) == 0:
                if not nfa.accepts(()):
                    return None
            elif len(replacement) == 2 and not isinstance(replacement[0],
                                                          StrVar) \
                    and isinstance(replacement[1], StrVar):
                code = self.alphabet.code(replacement[0])
                derived = self._derivative(nfa, code)
                if derived is None:
                    return None
                tail = replacement[1].name
                if tail in state.memberships:
                    state.memberships[tail] = \
                        state.memberships[tail].intersect(derived)
                else:
                    state.memberships[tail] = derived
                if state.memberships[tail].is_empty():
                    return None
            elif len(replacement) == 1 and isinstance(replacement[0],
                                                      StrVar):
                other = replacement[0].name
                if other in state.memberships:
                    state.memberships[other] = \
                        state.memberships[other].intersect(nfa)
                else:
                    state.memberships[other] = nfa
                if state.memberships[other].is_empty():
                    return None
            else:
                # Composite replacement: the membership becomes a leaf-time
                # concrete check (incompleteness is flagged there if it
                # fails).
                state.memberships[name] = nfa
                state.bindings.pop(name, None)
                return self._close_composite(state, name, nfa, replacement)
        return state

    def _close_composite(self, state, name, nfa, replacement):
        # Keep the variable and re-add an equation x = replacement so the
        # search can keep splitting it against the automaton later.
        state.memberships[name] = nfa
        state.equations.append(((StrVar(name),), tuple(replacement)))
        return state

    def _derivative(self, nfa, code):
        base = nfa.without_epsilon()
        initial_targets = set()
        for sym, t in base.out_edges(base.initial):
            if sym == code:
                initial_targets.add(t)
        if not initial_targets:
            return None
        transitions = list(base.transitions)
        fresh = base.num_states
        finals = set(base.finals)
        new_finals = set()
        for t in initial_targets:
            for sym, u in base.out_edges(t):
                transitions.append((fresh, sym, u))
            if t in finals:
                new_finals.add(fresh)
        from repro.automata.nfa import NFA
        result = NFA(base.num_states + 1, transitions, fresh,
                     finals | new_finals).trim()
        return None if result.is_empty() else result

    # -- leaves -------------------------------------------------------------------

    def _leaf(self, state, deadline):
        """No equations left: discharge lengths/ints, then concretize."""
        parts = list(state.int_parts)
        for name, nfa in state.memberships.items():
            shortest = nfa.shortest_word()
            if shortest is None:
                return None
            from repro.core.overapprox import _length_image
            from repro.logic.formula import disj, eq as eq_f
            image = _length_image(nfa.without_epsilon().trim())
            if image is not None and not image[1]:
                # No periodic residues: the language's length set is the
                # finite part of the image, exactly.
                parts.append(disj(*[eq_f(str_len(name), L)
                                    for L in sorted(image[0])]))
            else:
                parts.append(ge(str_len(name), len(shortest)))
        formula = conj(*parts)
        blocked = []
        for _ in range(self.max_leaf_attempts):
            if deadline.expired():
                self._incomplete = True
                return None
            result = solve_formula(conj(formula, *blocked),
                                   deadline=deadline)
            if result.status == "unsat":
                if blocked:
                    # The blocking clauses over-prune (same lengths may
                    # admit different words), so this is not a proof.
                    self._incomplete = True
                return None
            if result.status != "sat":
                self._incomplete = True
                return None
            interp = self._concretize(state, result.model)
            if interp is not None and check_model(self._problem, interp,
                                                  self.alphabet):
                return SolveResult("sat", model=interp)
            # Block this length/value combination and retry.
            lits = []
            for name in self._leaf_vars(state):
                lits.append(ne(str_len(name),
                               result.model.get(length_var(name), 0)))
            for result_var, _ in state.tonums:
                lits.append(ne(int_var(result_var),
                               result.model.get(result_var, 0)))
            if not lits:
                self._incomplete = True
                return None
            from repro.logic.formula import disj
            blocked.append(disj(*lits))
        self._incomplete = True
        return None

    def _leaf_vars(self, state):
        names = set()
        for v in self._problem.string_vars():
            names.add(v.name)
        for name in state.memberships:
            names.add(name)
        for name, term in state.bindings.items():
            names.add(name)
            for element in term:
                if isinstance(element, StrVar):
                    names.add(element.name)
        return sorted(names)

    def _concretize(self, state, model):
        """Build concrete strings from leaf lengths and numeric targets."""
        tonum_values = {name: model.get(result, -1)
                        for result, name in state.tonums}
        words = {}
        for name in self._leaf_vars(state):
            if name in state.bindings:
                continue
            length = model.get(length_var(name), 0)
            if length < 0 or length > 4000:
                return None
            nfa = state.memberships.get(name)
            value = tonum_values.get(name)
            word = self._word_for(nfa, length, value)
            if word is None:
                return None
            words[name] = word
        # Resolve bound variables bottom-up (bindings reference later vars).
        for name in reversed(list(state.bindings)):
            term = state.bindings[name]
            try:
                words[name] = "".join(
                    words[e.name] if isinstance(e, StrVar) else e
                    for e in term)
            except KeyError:
                return None
        interp = dict(words)
        for int_name in self._problem.int_vars():
            interp[int_name] = model.get(int_name, 0)
        return interp

    def _word_for(self, nfa, length, value):
        """A word of exactly *length*, in *nfa* if given, spelling *value*
        if a conversion targets this variable."""
        if value is not None and value >= 0:
            digits = str(value)
            if len(digits) > length:
                return None
            candidate = "0" * (length - len(digits)) + digits
            if nfa is None or nfa.accepts(
                    self.alphabet.encode_word(candidate)):
                return candidate
            return None
        if nfa is None:
            if value is None:
                return "a" * length
            # value == -1: must not be a numeral.
            if length == 0:
                return ""
            return "a" * length
        word = self._nfa_word_of_length(nfa, length)
        if word is None:
            return None
        text = self.alphabet.decode_word(word)
        if value == -1 and to_num_value(text) != -1:
            return None
        return text

    @staticmethod
    def _nfa_word_of_length(nfa, length):
        base = nfa.without_epsilon()
        layers = [{base.initial: None}]
        for i in range(length):
            layer = {}
            for s in layers[-1]:
                for sym, t in base.out_edges(s):
                    if t not in layer:
                        layer[t] = (s, sym)
            if not layer:
                return None
            layers.append(layer)
        goal = next((s for s in layers[-1] if s in base.finals), None)
        if goal is None:
            return None
        word = []
        state = goal
        for i in range(length, 0, -1):
            prev, sym = layers[i][state]
            word.append(sym)
            state = prev
        return list(reversed(word))
