"""Baseline solvers playing the comparison roles of the paper's tables.

* :class:`EnumerativeSolver` — naive bounded search (the Z3Str3-ish role in
  our tables): enumerate candidate strings by increasing total length and
  check concretely, discharging residual integer constraints with the SMT
  core.
* :class:`SplittingSolver` — DPLL-style word-equation splitting with length
  reasoning (the CVC4/Z3 family's strategy): Levi's-lemma case splits,
  automata derivatives for membership, weak string-number support.

Both implement ``solve(problem, timeout) -> SolveResult``, the same
interface as :class:`repro.core.solver.TrauSolver`.
"""

from repro.baselines.enumerative import EnumerativeSolver
from repro.baselines.splitter import SplittingSolver

__all__ = ["EnumerativeSolver", "SplittingSolver"]
