"""Naive bounded-search baseline.

Enumerates assignments of concrete strings to the string variables in
order of increasing total length, pruning per-variable candidates with the
regular constraints, and for each full string assignment discharges the
remaining integer constraints with the SMT core.

The solver answers UNSAT only when sound length bounds (from interval
propagation over the length abstraction) make the finished search
exhaustive; otherwise an exhausted budget yields UNKNOWN.  This mirrors the
behaviour of bounded solvers in the paper's comparison: fine on tiny
instances, hopeless as lengths grow.
"""

from math import inf

from repro.alphabet import DEFAULT_ALPHABET
from repro.config import Deadline
from repro.core.overapprox import length_abstraction
from repro.core.solver import SolveResult
from repro.logic.formula import conj, eq, substitute
from repro.logic.intervals import propagate_intervals
from repro.smt import solve_formula
from repro.strings.ast import (
    IntConstraint, RegularConstraint, ToNum, WordEquation, length_var,
)
from repro.strings.eval import evaluate_constraint, to_num_value


class EnumerativeSolver:
    """Brute-force baseline with concrete evaluation."""

    def __init__(self, alphabet=DEFAULT_ALPHABET, max_total_length=8,
                 max_candidates_per_var=20000):
        self.alphabet = alphabet
        self.max_total_length = max_total_length
        self.max_candidates = max_candidates_per_var

    def solve(self, problem, timeout=None):
        deadline = Deadline(timeout)
        string_vars = sorted(v.name for v in problem.string_vars())
        bounds = self._length_bounds(problem)
        if bounds is None:
            return SolveResult("unsat",
                               stats={"refuted_by": "length-abstraction"})
        alphabet_chars = self._candidate_chars(problem)

        if not string_vars:
            return self._finish(problem, {}, deadline)

        # A variable's enumeration is exhaustive only when its sound
        # length bound is finite AND fully covered by the search depth;
        # any UNSAT claim below must rest on the per-variable flag, not
        # on the mere existence of a finite bound.
        per_var_max = {}
        var_exhaustive = {}
        for name in string_vars:
            hi = bounds.get(name, inf)
            if hi is inf or hi > self.max_total_length:
                per_var_max[name] = self.max_total_length
                var_exhaustive[name] = False
            else:
                per_var_max[name] = int(hi)
                var_exhaustive[name] = True

        candidates = {}
        for name in string_vars:
            words, truncated = self._candidates_for(
                problem, name, per_var_max[name], alphabet_chars, deadline)
            if words is None:
                return SolveResult("unknown",
                                   stats={"stopped_by": "deadline"})
            if truncated:
                var_exhaustive[name] = False
            if not words:
                if var_exhaustive[name]:
                    return SolveResult(
                        "unsat", stats={"refuted_by": "empty-candidates"})
                return SolveResult("unknown", stats={
                    "stopped_by": "candidate-cap" if truncated
                    else "search-bound"})
            candidates[name] = words

        assignment = {}
        outcome = self._search(problem, string_vars, 0, candidates,
                               assignment, deadline)
        if outcome is not None:
            return outcome
        if deadline.expired():
            return SolveResult("unknown", stats={"stopped_by": "deadline"})
        if all(var_exhaustive.values()):
            return SolveResult("unsat",
                               stats={"refuted_by": "exhaustive-search"})
        return SolveResult("unknown", stats={"stopped_by": "search-bound"})

    # -- candidate generation -------------------------------------------------

    def _candidate_chars(self, problem):
        chars = set("a0")
        for constraint in problem:
            if isinstance(constraint, WordEquation):
                for element in constraint.lhs + constraint.rhs:
                    if isinstance(element, str):
                        chars.update(element)
            elif isinstance(constraint, RegularConstraint):
                for code in constraint.nfa.alphabet():
                    chars.add(self.alphabet.char(code))
            elif isinstance(constraint, ToNum):
                chars.update("0123456789")
        return sorted(chars)

    def _candidates_for(self, problem, name, max_len, chars, deadline):
        """Words up to *max_len* consistent with the var's automata.

        Returns ``(words, truncated)``; truncation (by the candidate cap)
        makes any later exhaustion claim invalid.  A deadline hit returns
        ``(None, True)``.
        """
        nfas = [c.nfa for c in problem.by_kind(RegularConstraint)
                if c.var.name == name]
        combined = None
        for nfa in nfas:
            combined = nfa if combined is None else combined.intersect(nfa)
        words = [""]
        frontier = [""]
        truncated = False
        for _ in range(max_len):
            if deadline.expired():
                return None, True
            nxt = []
            for w in frontier:
                for c in chars:
                    nxt.append(w + c)
            words.extend(nxt)
            frontier = nxt
            if len(words) > self.max_candidates:
                words = words[: self.max_candidates]
                truncated = True
                break
        if combined is not None:
            words = [w for w in words
                     if combined.accepts(self.alphabet.encode_word(w))]
        return words, truncated

    def _length_bounds(self, problem):
        """Sound upper bounds per variable; None when the abstraction is
        already infeasible (the instance is UNSAT outright)."""
        formula = length_abstraction(problem, self.alphabet)
        state = propagate_intervals(formula)
        if not state.feasible:
            return None
        out = {}
        for v in problem.string_vars():
            out[v.name] = state.upper(length_var(v.name))
        return out

    # -- search ------------------------------------------------------------------

    def _search(self, problem, names, index, candidates, assignment,
                deadline):
        if deadline.expired():
            return SolveResult("unknown", stats={"stopped_by": "deadline"})
        if index == len(names):
            return self._try_assignment(problem, assignment, deadline)
        name = names[index]
        for word in candidates[name]:
            # Checked per candidate: a level where every word fails the
            # consistency filter must still honour the deadline.
            if deadline.expired():
                return SolveResult("unknown",
                                   stats={"stopped_by": "deadline"})
            assignment[name] = word
            if not self._consistent_so_far(problem, assignment):
                continue
            outcome = self._search(problem, names, index + 1, candidates,
                                   assignment, deadline)
            if outcome is not None:
                return outcome
        assignment.pop(name, None)
        return None

    def _consistent_so_far(self, problem, assignment):
        """Check constraints whose string variables are all assigned."""
        for constraint in problem:
            if isinstance(constraint, (IntConstraint, ToNum)):
                continue
            names = {v.name for v in constraint.string_vars()}
            if not names.issubset(assignment):
                continue
            if not evaluate_constraint(constraint, assignment,
                                       self.alphabet):
                return False
        return True

    def _try_assignment(self, problem, assignment, deadline):
        """Strings fixed: discharge the integer residue with the SMT core."""
        substitution = {}
        parts = []
        for constraint in problem:
            if isinstance(constraint, IntConstraint):
                parts.append(constraint.formula)
            elif isinstance(constraint, ToNum):
                value = to_num_value(assignment[constraint.var.name])
                parts.append(eq(constraint.result, value))
            elif not evaluate_constraint(constraint, assignment,
                                         self.alphabet):
                return None
        for name, word in assignment.items():
            substitution[length_var(name)] = len(word)
        formula = substitute(conj(*parts), substitution)
        result = solve_formula(formula, deadline=deadline)
        if result.status != "sat":
            if result.status == "unsat":
                return None
            return SolveResult("unknown", stats={
                "stopped_by": result.stats.get("stopped_by", "smt")})
        model = dict(assignment)
        for name in problem.int_vars():
            model[name] = result.model.get(name, 0)
        return SolveResult("sat", model=model)

    def _finish(self, problem, assignment, deadline):
        outcome = self._try_assignment(problem, assignment, deadline)
        if outcome is not None:
            return outcome
        return SolveResult("unsat", stats={"refuted_by": "integer-residue"})
