"""Naive bounded-search baseline.

Enumerates assignments of concrete strings to the string variables in
order of increasing total length, pruning per-variable candidates with the
regular constraints, and for each full string assignment discharges the
remaining integer constraints with the SMT core.

The solver answers UNSAT only when sound length bounds (from interval
propagation over the length abstraction) make the finished search
exhaustive; otherwise an exhausted budget yields UNKNOWN.  This mirrors the
behaviour of bounded solvers in the paper's comparison: fine on tiny
instances, hopeless as lengths grow.
"""

from math import inf

from repro.alphabet import DEFAULT_ALPHABET
from repro.config import Deadline
from repro.core.overapprox import length_abstraction
from repro.core.solver import SolveResult
from repro.logic.formula import conj, eq, substitute
from repro.logic.intervals import propagate_intervals
from repro.smt import solve_formula
from repro.strings.ast import (
    IntConstraint, RegularConstraint, ToNum, WordEquation, length_var,
)
from repro.strings.eval import evaluate_constraint, to_num_value


class EnumerativeSolver:
    """Brute-force baseline with concrete evaluation."""

    def __init__(self, alphabet=DEFAULT_ALPHABET, max_total_length=8,
                 max_candidates_per_var=20000):
        self.alphabet = alphabet
        self.max_total_length = max_total_length
        self.max_candidates = max_candidates_per_var

    def solve(self, problem, timeout=None):
        deadline = Deadline(timeout)
        string_vars = sorted(v.name for v in problem.string_vars())
        bounds = self._length_bounds(problem)
        if bounds is None:
            return SolveResult("unsat")
        alphabet_chars = self._candidate_chars(problem)

        if not string_vars:
            return self._finish(problem, {}, deadline)

        per_var_max = {}
        exhaustive = True
        for name in string_vars:
            hi = bounds.get(name, inf)
            if hi is inf or hi > self.max_total_length:
                per_var_max[name] = self.max_total_length
                exhaustive = False
            else:
                per_var_max[name] = int(hi)

        candidates = {}
        for name in string_vars:
            words, truncated = self._candidates_for(
                problem, name, per_var_max[name], alphabet_chars, deadline)
            if words is None:
                return SolveResult("unknown")
            if truncated:
                exhaustive = False
            if not words:
                if not truncated and self._var_bounded(problem, name,
                                                       bounds):
                    return SolveResult("unsat")
                return SolveResult("unknown")
            candidates[name] = words

        assignment = {}
        outcome = self._search(problem, string_vars, 0, candidates,
                               assignment, deadline)
        if outcome is not None:
            return outcome
        if deadline.expired():
            return SolveResult("unknown")
        return SolveResult("unsat" if exhaustive else "unknown")

    # -- candidate generation -------------------------------------------------

    def _candidate_chars(self, problem):
        chars = set("a0")
        for constraint in problem:
            if isinstance(constraint, WordEquation):
                for element in constraint.lhs + constraint.rhs:
                    if isinstance(element, str):
                        chars.update(element)
            elif isinstance(constraint, RegularConstraint):
                for code in constraint.nfa.alphabet():
                    chars.add(self.alphabet.char(code))
            elif isinstance(constraint, ToNum):
                chars.update("0123456789")
        return sorted(chars)

    def _candidates_for(self, problem, name, max_len, chars, deadline):
        """Words up to *max_len* consistent with the var's automata.

        Returns ``(words, truncated)``; truncation (by the candidate cap)
        makes any later exhaustion claim invalid.  A deadline hit returns
        ``(None, True)``.
        """
        nfas = [c.nfa for c in problem.by_kind(RegularConstraint)
                if c.var.name == name]
        combined = None
        for nfa in nfas:
            combined = nfa if combined is None else combined.intersect(nfa)
        words = [""]
        frontier = [""]
        truncated = False
        for _ in range(max_len):
            if deadline.expired():
                return None, True
            nxt = []
            for w in frontier:
                for c in chars:
                    nxt.append(w + c)
            words.extend(nxt)
            frontier = nxt
            if len(words) > self.max_candidates:
                words = words[: self.max_candidates]
                truncated = True
                break
        if combined is not None:
            words = [w for w in words
                     if combined.accepts(self.alphabet.encode_word(w))]
        return words, truncated

    def _var_bounded(self, problem, name, bounds):
        return bounds.get(name, inf) is not inf

    def _length_bounds(self, problem):
        """Sound upper bounds per variable; None when the abstraction is
        already infeasible (the instance is UNSAT outright)."""
        formula = length_abstraction(problem, self.alphabet)
        state = propagate_intervals(formula)
        if not state.feasible:
            return None
        out = {}
        for v in problem.string_vars():
            out[v.name] = state.upper(length_var(v.name))
        return out

    # -- search ------------------------------------------------------------------

    def _search(self, problem, names, index, candidates, assignment,
                deadline):
        if deadline.expired():
            return SolveResult("unknown")
        if index == len(names):
            return self._try_assignment(problem, assignment, deadline)
        name = names[index]
        for word in candidates[name]:
            assignment[name] = word
            if not self._consistent_so_far(problem, assignment):
                continue
            outcome = self._search(problem, names, index + 1, candidates,
                                   assignment, deadline)
            if outcome is not None and outcome.status != "unsat":
                return outcome
            if deadline.expired():
                return SolveResult("unknown")
        assignment.pop(name, None)
        return None

    def _consistent_so_far(self, problem, assignment):
        """Check constraints whose string variables are all assigned."""
        for constraint in problem:
            if isinstance(constraint, (IntConstraint, ToNum)):
                continue
            names = {v.name for v in constraint.string_vars()}
            if not names.issubset(assignment):
                continue
            if not evaluate_constraint(constraint, assignment,
                                       self.alphabet):
                return False
        return True

    def _try_assignment(self, problem, assignment, deadline):
        """Strings fixed: discharge the integer residue with the SMT core."""
        substitution = {}
        parts = []
        for constraint in problem:
            if isinstance(constraint, IntConstraint):
                parts.append(constraint.formula)
            elif isinstance(constraint, ToNum):
                value = to_num_value(assignment[constraint.var.name])
                parts.append(eq(constraint.result, value))
            elif not evaluate_constraint(constraint, assignment,
                                         self.alphabet):
                return None
        for name, word in assignment.items():
            substitution[length_var(name)] = len(word)
        formula = substitute(conj(*parts), substitution)
        result = solve_formula(formula, deadline=deadline)
        if result.status != "sat":
            return None if result.status == "unsat" else SolveResult("unknown")
        model = dict(assignment)
        for name in problem.int_vars():
            model[name] = result.model.get(name, 0)
        return SolveResult("sat", model=model)

    def _finish(self, problem, assignment, deadline):
        outcome = self._try_assignment(problem, assignment, deadline)
        return outcome if outcome is not None else SolveResult("unsat")
