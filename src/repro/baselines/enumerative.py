"""Naive bounded-search baseline.

Enumerates assignments of concrete strings to the string variables in
order of increasing total length, pruning per-variable candidates with the
regular constraints, and for each full string assignment discharges the
remaining integer constraints with the SMT core.

The solver answers UNSAT only when sound length bounds (from interval
propagation over the length abstraction) make the finished search
exhaustive; otherwise an exhausted budget yields UNKNOWN.  This mirrors the
behaviour of bounded solvers in the paper's comparison: fine on tiny
instances, hopeless as lengths grow.
"""

from math import inf

from repro.alphabet import DEFAULT_ALPHABET
from repro.config import Deadline
from repro.core.overapprox import length_abstraction
from repro.core.solver import SolveResult
from repro.logic.formula import FALSE, TRUE, conj, disj, eq, substitute
from repro.logic.intervals import propagate_intervals
from repro.smt import solve_formula
from repro.strings.ast import (
    CharCode, CharNeq, Disjunction, IntConstraint, RegularConstraint,
    ToNum, WordEquation, length_var,
)
from repro.strings.eval import evaluate_constraint, to_num_value


class EnumerativeSolver:
    """Brute-force baseline with concrete evaluation."""

    def __init__(self, alphabet=DEFAULT_ALPHABET, max_total_length=8,
                 max_candidates_per_var=20000):
        self.alphabet = alphabet
        self.max_total_length = max_total_length
        self.max_candidates = max_candidates_per_var

    def solve(self, problem, timeout=None):
        deadline = Deadline(timeout)
        string_vars = sorted(v.name for v in problem.string_vars())
        bounds = self._length_bounds(problem)
        if bounds is None:
            return SolveResult("unsat",
                               stats={"refuted_by": "length-abstraction"})
        alphabet_chars = self._candidate_chars(problem)

        if not string_vars:
            return self._finish(problem, {}, deadline)

        # A variable's enumeration is exhaustive only when its sound
        # length bound is finite AND fully covered by the search depth;
        # any UNSAT claim below must rest on the per-variable flag, not
        # on the mere existence of a finite bound.
        per_var_max = {}
        var_exhaustive = {}
        for name in string_vars:
            hi = bounds.get(name, inf)
            if hi is inf or hi > self.max_total_length:
                per_var_max[name] = self.max_total_length
                var_exhaustive[name] = False
            else:
                per_var_max[name] = int(hi)
                var_exhaustive[name] = True

        candidates = {}
        for name in string_vars:
            words, truncated = self._candidates_for(
                problem, name, per_var_max[name], alphabet_chars, deadline)
            if words is None:
                return SolveResult("unknown",
                                   stats={"stopped_by": "deadline"})
            if truncated:
                var_exhaustive[name] = False
            if not words:
                if var_exhaustive[name]:
                    return SolveResult(
                        "unsat", stats={"refuted_by": "empty-candidates"})
                return SolveResult("unknown", stats={
                    "stopped_by": "candidate-cap" if truncated
                    else "search-bound"})
            candidates[name] = words

        # Assign externally-named variables before desugaring auxiliaries
        # (and tighter domains first): the user-facing equations then
        # prune the branch-local auxiliaries instead of the reverse.
        string_vars.sort(key=lambda n: (n.startswith("_"),
                                        len(candidates[n]), n))
        assignment = {}
        outcome = self._search(problem, string_vars, 0, candidates,
                               assignment, deadline)
        if outcome is not None:
            return outcome
        if deadline.expired():
            return SolveResult("unknown", stats={"stopped_by": "deadline"})
        if all(var_exhaustive.values()):
            return SolveResult("unsat",
                               stats={"refuted_by": "exhaustive-search"})
        return SolveResult("unknown", stats={"stopped_by": "search-bound"})

    # -- candidate generation -------------------------------------------------

    def _candidate_chars(self, problem):
        """A character pool large enough that restricting the search to
        it cannot turn SAT into "exhaustive" UNSAT.

        The interchangeability argument: given any model, remap every
        character the constraints cannot distinguish to one from the
        pool.  Word equations survive arbitrary character substitutions,
        regular constraints survive substitutions within an automaton's
        unnamed-symbol classes, and conversions pin exactly their digit
        and marker characters.  Two constraint kinds observe more:

        * ``CharCode`` exposes the *code* of a character to arbitrary
          integer arithmetic — every character is distinguishable, so
          its presence forces the full alphabet into the pool.
        * ``CharNeq`` needs the substitution to stay injective on the
          disequal pair; each edge can consume at most two pool
          characters beyond the literals, so the pool grows by two
          spare characters per edge (greedy recoloring then always
          finds room).
        """
        chars = set("a0")
        neq_edges = 0
        full = False

        def scan(constraints):
            nonlocal neq_edges, full
            for constraint in constraints:
                if isinstance(constraint, WordEquation):
                    for element in constraint.lhs + constraint.rhs:
                        if isinstance(element, str):
                            chars.update(element)
                elif isinstance(constraint, RegularConstraint):
                    codes = constraint.nfa.alphabet()
                    if len(codes) < len(self.alphabet):
                        for code in codes:
                            chars.add(self.alphabet.char(code))
                    elif constraint.source:
                        # Complements (and dot-heavy regexes) mention the
                        # whole alphabet; only the literally-named
                        # characters distinguish words, the rest are
                        # interchangeable.
                        chars.update(self._source_chars(constraint.source))
                elif isinstance(constraint, ToNum):
                    chars.update("0123456789")
                    if constraint.semantics is not None:
                        chars.update(constraint.semantics.digit_chars())
                        chars.update(constraint.semantics.extra_chars())
                elif isinstance(constraint, CharCode):
                    full = True
                elif isinstance(constraint, CharNeq):
                    neq_edges += 1
                elif isinstance(constraint, Disjunction):
                    for branch in constraint.branches:
                        scan(branch)

        scan(problem)
        if full:
            return [ch for ch in self.alphabet.chars()]
        spare = iter(self.alphabet.chars())
        needed = len(chars) + 2 * neq_edges
        while len(chars) < needed:
            ch = next(spare, None)
            if ch is None:
                break
            chars.add(ch)
        return sorted(chars)

    def _source_chars(self, source):
        """Literal characters appearing in a regex source string."""
        out = set()
        meta = set("()[]|*+?{}.!^-")
        i = 0
        while i < len(source):
            ch = source[i]
            if ch == "\\" and i + 1 < len(source):
                ch = source[i + 1]
                if ch in self.alphabet:
                    out.add(ch)
                i += 2
                continue
            if ch not in meta and ch in self.alphabet:
                out.add(ch)
            i += 1
        return out

    def _candidates_for(self, problem, name, max_len, chars, deadline):
        """Words up to *max_len* consistent with the var's automata.

        Returns ``(words, truncated)``; truncation (by the candidate cap)
        makes any later exhaustion claim invalid.  A deadline hit returns
        ``(None, True)``.
        """
        nfas = [c.nfa for c in problem.by_kind(RegularConstraint)
                if c.var.name == name]
        combined = None
        for nfa in nfas:
            combined = nfa if combined is None else combined.intersect(nfa)
        words = [""]
        frontier = [""]
        truncated = False
        for _ in range(max_len):
            if deadline.expired():
                return None, True
            nxt = []
            for w in frontier:
                for c in chars:
                    nxt.append(w + c)
            words.extend(nxt)
            frontier = nxt
            if len(words) > self.max_candidates:
                words = words[: self.max_candidates]
                truncated = True
                break
        if combined is not None:
            words = [w for w in words
                     if combined.accepts(self.alphabet.encode_word(w))]
        return words, truncated

    def _length_bounds(self, problem):
        """Sound upper bounds per variable; None when the abstraction is
        already infeasible (the instance is UNSAT outright)."""
        formula = length_abstraction(problem, self.alphabet)
        state = propagate_intervals(formula)
        if not state.feasible:
            return None
        out = {}
        for v in problem.string_vars():
            out[v.name] = state.upper(length_var(v.name))
        return out

    # -- search ------------------------------------------------------------------

    def _search(self, problem, names, index, candidates, assignment,
                deadline):
        if deadline.expired():
            return SolveResult("unknown", stats={"stopped_by": "deadline"})
        if index == len(names):
            return self._try_assignment(problem, assignment, deadline)
        name = names[index]
        for word in candidates[name]:
            # Checked per candidate: a level where every word fails the
            # consistency filter must still honour the deadline.
            if deadline.expired():
                return SolveResult("unknown",
                                   stats={"stopped_by": "deadline"})
            assignment[name] = word
            if not self._consistent_so_far(problem, assignment):
                continue
            outcome = self._search(problem, names, index + 1, candidates,
                                   assignment, deadline)
            if outcome is not None:
                return outcome
        assignment.pop(name, None)
        return None

    def _consistent_so_far(self, problem, assignment):
        """Check constraints whose string variables are all assigned."""
        for constraint in problem:
            if isinstance(constraint, (IntConstraint, ToNum, CharCode)):
                # Integer-carrying kinds wait for the SMT residue.
                continue
            if isinstance(constraint, Disjunction):
                if not self._disjunction_viable(constraint, assignment):
                    return False
                continue
            names = {v.name for v in constraint.string_vars()}
            if not names.issubset(assignment):
                continue
            if not evaluate_constraint(constraint, assignment,
                                       self.alphabet):
                return False
        return True

    def _disjunction_viable(self, constraint, assignment):
        """False only when every branch already has a fully-assigned
        string constraint that evaluates false — a sound partial check
        (integer-layer parts wait for the SMT residue)."""
        for branch in constraint.branches:
            viable = True
            for c in branch:
                if isinstance(c, (IntConstraint, ToNum, CharCode)):
                    continue
                if isinstance(c, Disjunction):
                    if not self._disjunction_viable(c, assignment):
                        viable = False
                        break
                    continue
                names = {v.name for v in c.string_vars()}
                if names.issubset(assignment) \
                        and not evaluate_constraint(c, assignment,
                                                    self.alphabet):
                    viable = False
                    break
            if viable:
                return True
        return False

    def _residue(self, constraint, assignment):
        """*constraint* as a pure integer formula under the assignment.

        String-only constraints fold to TRUE/FALSE by evaluation;
        integer-carrying kinds contribute their formulas; disjunctions
        fold branch-by-branch."""
        if isinstance(constraint, IntConstraint):
            return constraint.formula
        if isinstance(constraint, ToNum):
            text = assignment[constraint.var.name]
            value = to_num_value(text) if constraint.semantics is None \
                else constraint.semantics.convert(text)
            return eq(constraint.result, value)
        if isinstance(constraint, CharCode):
            word = assignment[constraint.var.name]
            if len(word) != 1:
                return FALSE
            return eq(constraint.result, ord(word))
        if isinstance(constraint, Disjunction):
            return disj(*[conj(*[self._residue(c, assignment)
                                 for c in branch])
                          for branch in constraint.branches])
        return TRUE if evaluate_constraint(constraint, assignment,
                                           self.alphabet) else FALSE

    def _try_assignment(self, problem, assignment, deadline):
        """Strings fixed: discharge the integer residue with the SMT core."""
        substitution = {}
        parts = []
        for constraint in problem:
            residue = self._residue(constraint, assignment)
            if residue is FALSE:
                return None
            parts.append(residue)
        for name, word in assignment.items():
            substitution[length_var(name)] = len(word)
        formula = substitute(conj(*parts), substitution)
        result = solve_formula(formula, deadline=deadline)
        if result.status != "sat":
            if result.status == "unsat":
                return None
            return SolveResult("unknown", stats={
                "stopped_by": result.stats.get("stopped_by", "smt")})
        model = dict(assignment)
        for name in problem.int_vars():
            model[name] = result.model.get(name, 0)
        return SolveResult("sat", model=model)

    def _finish(self, problem, assignment, deadline):
        outcome = self._try_assignment(problem, assignment, deadline)
        if outcome is not None:
            return outcome
        return SolveResult("unsat", stats={"refuted_by": "integer-residue"})
