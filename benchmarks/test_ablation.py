"""Ablation benchmarks for the design choices DESIGN.md calls out."""

from repro.bench import ablation
from repro.bench.tables import format_stats_breakdown, format_table


def test_overapprox_ablation(benchmark, table_scale):
    results, outcomes = benchmark.pedantic(
        lambda: ablation.overapprox_ablation(
            count=table_scale["count"], timeout=table_scale["timeout"]),
        rounds=1, iterations=1)
    print()
    print(format_table("Ablation A: over-approximation on/off",
                       results, ["with-oa", "without-oa"]))
    print(format_stats_breakdown("Ablation A: where the time goes (means)",
                                 outcomes, ablation.BREAKDOWN_KEYS))
    summary = results[0][1]
    # The over-approximation phase is the cheaper UNSAT engine; without it
    # only the lossless-restriction fallback can refute, so the with-OA
    # configuration proves at least as many UNSATs.
    assert summary["with-oa"]["UNSAT"] >= summary["without-oa"]["UNSAT"]
    assert summary["with-oa"]["UNSAT"] > 0


def test_static_analysis_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: ablation.static_analysis_ablation(max_loops=5, timeout=30.0),
        rounds=1, iterations=1)
    print()
    for label, k, status, seconds in rows:
        print("  %-10s luhn-%02d  %-8s %6.2fs" % (label, k, status, seconds))
    with_hints = {k: status for label, k, status, _ in rows
                  if label == "hints-on"}
    assert all(status == "sat" for status in with_hints.values())


def test_hint_ablation_conversions(benchmark, table_scale):
    results, outcomes = benchmark.pedantic(
        lambda: ablation.numeric_pfa_ablation(
            count=table_scale["count"], timeout=table_scale["timeout"]),
        rounds=1, iterations=1)
    print()
    print(format_table("Ablation B: static length hints on/off",
                       results, ["full", "no-hints"]))
    print(format_stats_breakdown("Ablation B: where the time goes (means)",
                                 outcomes, ablation.BREAKDOWN_KEYS))
    summary = results[0][1]
    solved_full = summary["full"]["SAT"] + summary["full"]["UNSAT"]
    solved_bare = summary["no-hints"]["SAT"] + summary["no-hints"]["UNSAT"]
    assert solved_full >= solved_bare
