"""Regenerates Table 3: the checkLuhn ladder.

The paper's shape: Z3-Trau solves every size 2..12 quickly while the
other solvers drop out as the size grows.  We assert the PFA solver
solves every size in the sweep and that each baseline stops keeping up
at some point."""

from repro.bench import table3
from repro.bench.runner import SOLVERS
from repro.bench.tables import format_per_instance


def test_table3(benchmark, table_scale):
    rows = benchmark.pedantic(
        lambda: table3.run(timeout=table_scale["luhn_timeout"],
                           max_loops=table_scale["luhn_max"]),
        rounds=1, iterations=1)
    print()
    print(format_per_instance("Table 3: checkLuhn ladder", rows,
                              list(SOLVERS)))
    pfa_solved = [by["pfa"].classification == "SAT" for _, by in rows]
    assert all(pfa_solved)
    for baseline in ("splitting", "enumerative"):
        solved = sum(1 for _, by in rows
                     if by[baseline].classification == "SAT")
        assert solved < len(rows)
