"""Regenerates Table 1: basic string constraints, five suites.

The assertion encodes the paper's headline for this table: the PFA solver
is competitive with the best baseline on basic constraints (it solves at
least as many instances as either baseline)."""

from repro.bench import table1
from repro.bench.runner import SOLVERS
from repro.bench.tables import format_table


def _solved(summary, solver):
    counts = summary.get(solver, {})
    return counts.get("SAT", 0) + counts.get("UNSAT", 0)


def test_table1(benchmark, table_scale):
    results = benchmark.pedantic(
        lambda: table1.run(count=table_scale["count"],
                           timeout=table_scale["timeout"]),
        rounds=1, iterations=1)
    print()
    print(format_table("Table 1: basic string constraints",
                       results, list(SOLVERS)))
    total_pfa = sum(_solved(summary, "pfa") for _, summary in results)
    total_split = sum(_solved(summary, "splitting") for _, summary in results)
    total_enum = sum(_solved(summary, "enumerative")
                     for _, summary in results)
    assert total_pfa >= total_split
    assert total_pfa >= total_enum
    # No wrong answers from the paper's procedure.
    for _, summary in results:
        assert summary["pfa"]["INCORRECT"] == 0
        assert summary["pfa"]["ERROR"] == 0
