"""Perf-smoke gate: the quick set solves correctly, with counters, and
the answers do not depend on the caching/incrementality knobs."""

import pytest

from repro.bench import perfsmoke

EXPECTED = {
    "luhn": "sat",
    "tonum": "sat",
}


@pytest.fixture(scope="module")
def quick_run():
    return perfsmoke.run_set(quick=True)


def test_quick_set_statuses(quick_run):
    assert quick_run["results"], "empty smoke set"
    for row in quick_run["results"]:
        expected = EXPECTED.get(row["suite"])
        if expected is not None:
            assert row["status"] == expected, row
        else:
            assert row["status"] in ("sat", "unsat"), row


def test_quick_set_reports_counters(quick_run):
    """The multi-round instances must show incrementality at work."""
    multi_round = [row for row in quick_run["results"] if row["rounds"] > 1]
    assert multi_round, "smoke set lost its multi-round instances"
    assert any("counters" in row for row in multi_round)
    reused = sum(row.get("counters", {}).get("smt.clauses_reused", 0)
                 for row in quick_run["results"])
    assert reused > 0


def test_statuses_identical_without_caches(quick_run):
    plain = perfsmoke.run_set(no_cache=True, no_incremental=True,
                              quick=True)
    cached = {row["name"]: row["status"] for row in quick_run["results"]}
    uncached = {row["name"]: row["status"] for row in plain["results"]}
    assert cached == uncached


def test_compare_attaches_geomean():
    doc = {"results": [
        {"suite": "luhn", "name": "a", "status": "sat", "seconds": 1.0},
        {"suite": "luhn", "name": "b", "status": "sat", "seconds": 2.0},
        {"suite": "pythonlib", "name": "c", "status": "sat",
         "seconds": 1.0},
        {"suite": "pythonlib", "name": "d", "status": "sat",
         "seconds": 1.0}]}
    base = {"results": [
        {"name": "a", "status": "sat", "seconds": 2.0},
        {"name": "b", "status": "sat", "seconds": 8.0},
        {"name": "c", "status": "sat", "seconds": 8.0},
        {"name": "d", "status": "unsat", "seconds": 9.0}]}
    merged = perfsmoke.compare(doc, base)
    assert merged["results"][0]["speedup"] == 2.0
    assert merged["results"][1]["speedup"] == 4.0
    # The gate geomean covers the gate suites only ...
    assert merged["geomean_speedup"] == pytest.approx(2.828, abs=1e-3)
    # ... the "all" geomean adds c (8x) but skips the status-mismatched d.
    assert merged["results"][3].get("speedup") is None
    assert merged["results"][3]["baseline_status_differs"] == "unsat"
    assert merged["geomean_speedup_all"] == pytest.approx(4.0, abs=1e-3)
