"""Shared configuration for the benchmark suite.

Every benchmark prints the table rows it regenerates (the paper's
evaluation artifacts) in addition to pytest-benchmark's timing summary.
Scale knobs live here so CI-sized runs stay in minutes; raise them to
approach the paper's sweep sizes.
"""

import pytest

# Instances per suite for Tables 1 and 2 (the paper used thousands; the
# pure-Python substrate trades count for per-instance coverage).
TABLE_COUNT = 8
# Per-instance timeout for Tables 1 and 2 (paper: 10 s).
TABLE_TIMEOUT = 10.0
# Largest Luhn instance and its timeout for Table 3 (paper: 12 / 120 s).
LUHN_MAX = 10
LUHN_TIMEOUT = 60.0


@pytest.fixture(scope="session")
def table_scale():
    return {"count": TABLE_COUNT, "timeout": TABLE_TIMEOUT,
            "luhn_max": LUHN_MAX, "luhn_timeout": LUHN_TIMEOUT}
