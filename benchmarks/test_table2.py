"""Regenerates Table 2: string-number conversion suites.

The assertion encodes the paper's headline result: on conversion-heavy
benchmarks the PFA procedure solves strictly more instances than both
baselines (in the paper, the second-best tool fails on 50x more
examples)."""

from repro.bench import table2
from repro.bench.runner import SOLVERS
from repro.bench.tables import format_table


def _solved(summary, solver):
    counts = summary.get(solver, {})
    return counts.get("SAT", 0) + counts.get("UNSAT", 0)


def test_table2(benchmark, table_scale):
    results = benchmark.pedantic(
        lambda: table2.run(count=table_scale["count"],
                           timeout=table_scale["timeout"]),
        rounds=1, iterations=1)
    print()
    print(format_table("Table 2: string-number conversion",
                       results, list(SOLVERS)))
    total_pfa = sum(_solved(summary, "pfa") for _, summary in results)
    total_split = sum(_solved(summary, "splitting") for _, summary in results)
    total_enum = sum(_solved(summary, "enumerative")
                     for _, summary in results)
    assert total_pfa > total_split
    assert total_pfa > total_enum
    for _, summary in results:
        assert summary["pfa"]["INCORRECT"] == 0
        assert summary["pfa"]["ERROR"] == 0
